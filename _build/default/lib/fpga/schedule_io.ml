module Instance = Packing.Instance

type entry = {
  task : int;
  start : int;
  position : (int * int) option;
}

let fail line fmt =
  Printf.ksprintf (fun s -> failwith (Printf.sprintf "line %d: %s" line s)) fmt

let int_of line s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail line "expected an integer, got %S" s

let index_of inst line label =
  let n = Instance.count inst in
  let rec go i =
    if i >= n then fail line "unknown task %s" label
    else if Instance.label inst i = label then i
    else go (i + 1)
  in
  go 0

let parse inst text =
  let entries = ref [] in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        List.filter (fun w -> w <> "")
          (String.split_on_char ' '
             (String.map (function '\t' | '\r' -> ' ' | c -> c) line))
      in
      let add task start position =
        if Hashtbl.mem seen task then fail lineno "duplicate task";
        if start < 0 then fail lineno "negative start time";
        Hashtbl.add seen task ();
        entries := { task; start; position } :: !entries
      in
      match words with
      | [] -> ()
      | [ "start"; label; t ] ->
        add (index_of inst lineno label) (int_of lineno t) None
      | [ "place"; label; t; x; y ] ->
        add (index_of inst lineno label) (int_of lineno t)
          (Some (int_of lineno x, int_of lineno y))
      | w :: _ -> fail lineno "unknown directive %s" w)
    (String.split_on_char '\n' text);
  List.rev !entries

let schedule_array inst entries =
  let n = Instance.count inst in
  let schedule = Array.make n (-1) in
  List.iter (fun e -> schedule.(e.task) <- e.start) entries;
  Array.iteri
    (fun i s ->
      if s < 0 then
        failwith
          (Printf.sprintf "no start time for task %s" (Instance.label inst i)))
    schedule;
  schedule

let of_placement inst placement =
  let buf = Buffer.create 256 in
  for i = 0 to Instance.count inst - 1 do
    let o = Geometry.Placement.origin placement i in
    Buffer.add_string buf
      (Printf.sprintf "place %s %d %d %d\n" (Instance.label inst i) o.(2)
         o.(0) o.(1))
  done;
  Buffer.contents buf

let placement_of inst entries =
  let n = Instance.count inst in
  let origins = Array.make n None in
  List.iter
    (fun e ->
      match e.position with
      | Some (x, y) -> origins.(e.task) <- Some [| x; y; e.start |]
      | None -> ())
    entries;
  if Array.for_all Option.is_some origins then
    Some
      (Geometry.Placement.make (Instance.boxes inst)
         (Array.map Option.get origins))
  else None
