type t = {
  w : int;
  h : int;
}

let create ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Chip.create: non-positive size";
  { w; h }

let width t = t.w
let height t = t.h
let cells t = t.w * t.h
let square s = create ~w:s ~h:s
let container t ~t_max = Geometry.Container.make3 ~w:t.w ~h:t.h ~t_max

let holds t box =
  Geometry.Box.extent box 0 <= t.w && Geometry.Box.extent box 1 <= t.h

let pp fmt t = Format.fprintf fmt "%dx%d cells" t.w t.h
