(** Hardware module libraries: named module types with geometry,
    execution time and reconfiguration overhead.

    A module type describes a synthesized macro (an array multiplier, an
    ALU slice, a DCT block, ...) as the paper's Sec. 2 does: a
    rectangular footprint of cells, an execution time in clock cycles,
    and a per-task constant reconfiguration overhead (load time of the
    partial configuration, modeled as an additive constant — the
    paper's simplification). *)

type module_type = {
  type_name : string;
  width : int; (** cells along x *)
  height : int; (** cells along y *)
  exec_time : int; (** clock cycles of computation *)
  reconfig_time : int; (** additive configuration-load overhead *)
}

type t

(** [create types] indexes module types by name.
    @raise Invalid_argument on duplicates or non-positive geometry. *)
val create : module_type list -> t

val find : t -> string -> module_type
val mem : t -> string -> bool
val types : t -> module_type list

(** [box ?include_reconfig mt] is the space-time box of one task of this
    type: [width x height x (exec_time + reconfig_time)] when
    [include_reconfig] is [true] (the default, matching the paper's
    "considering this as an offset ... part of the execution time"). *)
val box : ?include_reconfig:bool -> module_type -> Geometry.Box.t

(** [instantiate t ~tasks] builds the boxes and labels of an instance
    given a list of [(label, type name)] pairs.
    @raise Not_found on unknown type names. *)
val instantiate :
  ?include_reconfig:bool ->
  t ->
  tasks:(string * string) list ->
  Geometry.Box.t array * string array

val pp : Format.formatter -> t -> unit
