(** Value-change-dump (VCD) export of a simulated schedule.

    Produces an IEEE-1364-style VCD file with one wire per task (high
    while the task executes on the chip) plus a vector signal carrying
    the number of occupied cells — directly viewable in GTKWave & co.
    Pure string output, no I/O. *)

(** [of_placement instance placement ~chip ?timescale ()] renders the
    waveform. [timescale] defaults to ["1ns"] (one clock cycle = 1 unit). *)
val of_placement :
  Packing.Instance.t ->
  Geometry.Placement.t ->
  chip:Chip.t ->
  ?timescale:string ->
  unit ->
  string
