type module_type = {
  type_name : string;
  width : int;
  height : int;
  exec_time : int;
  reconfig_time : int;
}

type t = (string, module_type) Hashtbl.t

let create types =
  let table = Hashtbl.create 16 in
  List.iter
    (fun mt ->
      if mt.width <= 0 || mt.height <= 0 || mt.exec_time <= 0 then
        invalid_arg "Module_library.create: non-positive geometry";
      if mt.reconfig_time < 0 then
        invalid_arg "Module_library.create: negative reconfiguration time";
      if Hashtbl.mem table mt.type_name then
        invalid_arg
          (Printf.sprintf "Module_library.create: duplicate type %s"
             mt.type_name);
      Hashtbl.add table mt.type_name mt)
    types;
  table

let find t name =
  match Hashtbl.find_opt t name with
  | Some mt -> mt
  | None -> raise Not_found

let mem = Hashtbl.mem

let types t =
  List.sort
    (fun a b -> compare a.type_name b.type_name)
    (Hashtbl.fold (fun _ mt acc -> mt :: acc) t [])

let box ?(include_reconfig = true) mt =
  let duration =
    mt.exec_time + if include_reconfig then mt.reconfig_time else 0
  in
  Geometry.Box.make3 ~w:mt.width ~h:mt.height ~duration

let instantiate ?include_reconfig t ~tasks =
  let boxes =
    Array.of_list
      (List.map (fun (_, type_name) -> box ?include_reconfig (find t type_name)) tasks)
  in
  let labels = Array.of_list (List.map fst tasks) in
  (boxes, labels)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun mt ->
      Format.fprintf fmt "%s: %dx%d cells, %d cycles (+%d reconfig)@ "
        mt.type_name mt.width mt.height mt.exec_time mt.reconfig_time)
    (types t);
  Format.fprintf fmt "@]"
