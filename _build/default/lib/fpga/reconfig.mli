(** Reconfiguration cost models.

    The paper models reconfiguration overhead as a per-task constant
    ("possibly a different number for each task, depending on the target
    architecture") and notes many alternatives exist. We provide the
    constant model plus two structural ones for experimentation:
    column-based loading (Xilinx 6200-style partial configuration is
    addressed by columns) and per-cell streaming. *)

type model =
  | Constant of int (** fixed cycles per reconfiguration *)
  | Per_column of int (** cycles per occupied column *)
  | Per_cell of int (** cycles per configured cell *)

(** [load_time model ~w ~h] is the configuration-load time of a module
    footprint of [w x h] cells. *)
val load_time : model -> w:int -> h:int -> int

(** [total model boxes] sums load times over an array of module
    footprints (a whole instance). *)
val total : model -> Geometry.Box.t array -> int

val pp : Format.formatter -> model -> unit
