(** Simple directed graphs on a fixed vertex set [0 .. n-1].

    Used for precedence DAGs and for transitive orientations of
    comparability graphs. Self-loops are rejected; antiparallel arc
    pairs are representable (and detected by {!is_antisymmetric}). *)

type t

(** [create n] is the arcless digraph on vertices [0 .. n-1]. *)
val create : int -> t

(** Number of vertices. *)
val order : t -> int

(** Number of arcs. *)
val size : t -> int

(** [add_arc g u v] adds the arc [u -> v].
    @raise Invalid_argument on self-loops or out-of-range vertices. *)
val add_arc : t -> int -> int -> unit

(** [remove_arc g u v] removes the arc [u -> v] if present. *)
val remove_arc : t -> int -> int -> unit

(** [mem_arc g u v] is [true] iff [u -> v] is an arc. *)
val mem_arc : t -> int -> int -> bool

(** Sorted list of successors of a vertex. *)
val successors : t -> int -> int list

(** Sorted list of predecessors of a vertex. *)
val predecessors : t -> int -> int list

(** All arcs as pairs [(u, v)], lexicographically sorted. *)
val arcs : t -> (int * int) list

(** [of_arcs n arcs] builds a digraph on [n] vertices. *)
val of_arcs : int -> (int * int) list -> t

(** Deep copy. *)
val copy : t -> t

(** No pair of antiparallel arcs [u -> v], [v -> u]. *)
val is_antisymmetric : t -> bool

(** [is_transitive g] checks [u -> v -> w] implies [u -> w]. *)
val is_transitive : t -> bool

(** [is_acyclic g] is [true] iff [g] has no directed cycle. *)
val is_acyclic : t -> bool

(** [topological_order g] is [Some order] (a vertex list such that all
    arcs go forward) iff [g] is acyclic, [None] otherwise. *)
val topological_order : t -> int list option

(** In-place reflexive-free transitive closure (Warshall). *)
val transitive_closure : t -> unit

(** [transitive_reduction g] returns a fresh digraph with the minimal
    arc set whose transitive closure equals that of [g].
    @raise Invalid_argument if [g] is not acyclic. *)
val transitive_reduction : t -> t

(** [longest_path_lengths g ~weight] computes, for an acyclic [g], the
    array [d] with [d.(v)] the maximum of [weight u + d u'] over arcs
    into [v] — i.e. [d.(v)] is the total weight of the heaviest chain of
    strict predecessors of [v]. This is exactly the earliest feasible
    coordinate of box [v] when [weight] gives box extents.
    @raise Invalid_argument if [g] has a cycle. *)
val longest_path_lengths : t -> weight:(int -> int) -> int array

(** [critical_path g ~weight] is the weight of the heaviest directed
    chain (including the weights of both endpoints) in an acyclic [g];
    0 for the empty graph.
    @raise Invalid_argument if [g] has a cycle. *)
val critical_path : t -> weight:(int -> int) -> int

(** The underlying undirected graph (arc direction forgotten). *)
val to_undirected : t -> Undirected.t

(** Structural equality. *)
val equal : t -> t -> bool

(** Pretty-printer, e.g. [digraph(3){0->1, 1->2}]. *)
val pp : Format.formatter -> t -> unit
