type t = {
  n : int;
  adj : bool array array;
}

let create n =
  if n < 0 then invalid_arg "Undirected.create: negative order";
  { n; adj = Array.make_matrix n n false }

let order g = g.n

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Undirected: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Undirected.add_edge: self-loop";
  g.adj.(u).(v) <- true;
  g.adj.(v).(u) <- true

let remove_edge g u v =
  check g u;
  check g v;
  g.adj.(u).(v) <- false;
  g.adj.(v).(u) <- false

let mem_edge g u v =
  check g u;
  check g v;
  g.adj.(u).(v)

let neighbors g u =
  check g u;
  let rec loop v acc =
    if v < 0 then acc
    else loop (v - 1) (if g.adj.(u).(v) then v :: acc else acc)
  in
  loop (g.n - 1) []

let degree g u =
  check g u;
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    if g.adj.(u).(v) then incr d
  done;
  !d

let fold_edges f g acc =
  let acc = ref acc in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if g.adj.(u).(v) then acc := f u v !acc
    done
  done;
  !acc

let iter_edges f g =
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if g.adj.(u).(v) then f u v
    done
  done

let size g = fold_edges (fun _ _ k -> k + 1) g 0

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let copy g = { n = g.n; adj = Array.map Array.copy g.adj }

let complement g =
  let c = create g.n in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if not g.adj.(u).(v) then add_edge c u v
    done
  done;
  c

let induced g vs =
  let vs = Array.of_list vs in
  let m = Array.length vs in
  Array.iter (check g) vs;
  let h = create m in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if vs.(i) = vs.(j) then invalid_arg "Undirected.induced: duplicate vertex";
      if g.adj.(vs.(i)).(vs.(j)) then add_edge h i j
    done
  done;
  h

let is_clique g vs =
  let vs = Array.of_list vs in
  let m = Array.length vs in
  let ok = ref true in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if not (mem_edge g vs.(i) vs.(j)) then ok := false
    done
  done;
  !ok

let is_stable g vs =
  let vs = Array.of_list vs in
  let m = Array.length vs in
  let ok = ref true in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if mem_edge g vs.(i) vs.(j) then ok := false
    done
  done;
  !ok

let equal g h =
  g.n = h.n
  &&
  let same = ref true in
  for u = 0 to g.n - 1 do
    for v = 0 to g.n - 1 do
      if g.adj.(u).(v) <> h.adj.(u).(v) then same := false
    done
  done;
  !same

let components g =
  let seen = Array.make g.n false in
  let comps = ref [] in
  for s = 0 to g.n - 1 do
    if not seen.(s) then begin
      let comp = ref [] in
      let stack = ref [ s ] in
      seen.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          comp := u :: !comp;
          List.iter
            (fun v ->
              if not seen.(v) then begin
                seen.(v) <- true;
                stack := v :: !stack
              end)
            (neighbors g u)
      done;
      comps := List.sort compare !comp :: !comps
    end
  done;
  List.rev !comps

let pp fmt g =
  Format.fprintf fmt "graph(%d){%a}" g.n
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       (fun fmt (u, v) -> Format.fprintf fmt "%d-%d" u v))
    (edges g)
