(** Chordal graph recognition.

    A graph is chordal iff it admits a perfect elimination ordering
    (PEO). We compute a candidate ordering by Maximum Cardinality Search
    (MCS) and verify it; MCS yields a PEO exactly for chordal graphs
    (Tarjan & Yannakakis), so the test is exact. Interval graphs are
    chordal graphs whose complement is a comparability graph, which is
    how {!Interval_graph} uses this module. *)

(** [mcs_order g] is a Maximum Cardinality Search ordering of the
    vertices (in elimination order: position 0 is eliminated first). *)
val mcs_order : Undirected.t -> int array

(** [is_peo g order] checks that [order] is a perfect elimination
    ordering of [g]: for every vertex, its neighbors occurring later in
    the ordering form a clique. *)
val is_peo : Undirected.t -> int array -> bool

(** [is_chordal g] is [true] iff [g] is chordal. *)
val is_chordal : Undirected.t -> bool

(** [find_chordless_cycle g] returns a chordless cycle of length >= 4 if
    one exists ([None] iff the graph is chordal). Used for diagnostics
    and tests. *)
val find_chordless_cycle : Undirected.t -> int list option
