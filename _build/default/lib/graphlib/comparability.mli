(** Comparability graphs: Gallai implication classes and transitive
    orientation.

    An undirected graph is a {e comparability graph} if its edges can be
    oriented transitively ([a -> b] and [b -> c] imply [a -> c]). These
    graphs are exactly the complements of the component graphs of
    packing classes: a transitive orientation of the complement of an
    interval graph is an interval order, and weighted longest paths in
    that order yield box coordinates (see {!Core.Reconstruct}).

    The implication machinery follows Gallai/Golumbic: two directed
    edges [(a,b)] and [(a,c)] force each other ([(a,b) Γ (a,c)]) when
    [{b,c}] is not an edge, and similarly [(a,b) Γ (d,b)] when [{a,d}]
    is not an edge. The classes of the transitive closure of [Γ] are the
    implication classes; a graph is a comparability graph iff no
    implication class contains both orientations of some edge
    (Golumbic, Thm. 5.29). *)

(** [implication_class g a b] is the set of directed edges forced by
    orienting [a -> b], as a list of pairs, closed under the [Γ]
    relation. [{a,b}] must be an edge of [g]. *)
val implication_class : Undirected.t -> int -> int -> (int * int) list

(** [is_comparability g] is [true] iff [g] has a transitive
    orientation. *)
val is_comparability : Undirected.t -> bool

(** [transitive_orientation g] is [Some d] with [d] a verified
    transitive orientation of [g] (every edge oriented exactly one way,
    orientation transitive and acyclic), or [None] if [g] is not a
    comparability graph. Uses the classical class-by-class TRO scheme;
    the result is checked before being returned, so a [Some] answer is
    always sound. *)
val transitive_orientation : Undirected.t -> Digraph.t option

(** [max_weight_clique_of_orientation d ~weight] is the maximum total
    weight of a directed chain in a transitive acyclic orientation [d]
    — equivalently the maximum-weight clique of the underlying
    comparability graph. Weights must be non-negative. *)
val max_weight_clique_of_orientation : Digraph.t -> weight:(int -> int) -> int
