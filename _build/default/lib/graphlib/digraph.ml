type t = {
  n : int;
  adj : bool array array; (* adj.(u).(v) = arc u -> v *)
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative order";
  { n; adj = Array.make_matrix n n false }

let order g = g.n

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Digraph: vertex out of range"

let add_arc g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Digraph.add_arc: self-loop";
  g.adj.(u).(v) <- true

let remove_arc g u v =
  check g u;
  check g v;
  g.adj.(u).(v) <- false

let mem_arc g u v =
  check g u;
  check g v;
  g.adj.(u).(v)

let successors g u =
  check g u;
  let rec loop v acc =
    if v < 0 then acc
    else loop (v - 1) (if g.adj.(u).(v) then v :: acc else acc)
  in
  loop (g.n - 1) []

let predecessors g v =
  check g v;
  let rec loop u acc =
    if u < 0 then acc
    else loop (u - 1) (if g.adj.(u).(v) then u :: acc else acc)
  in
  loop (g.n - 1) []

let arcs g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for v = g.n - 1 downto 0 do
      if g.adj.(u).(v) then acc := (u, v) :: !acc
    done
  done;
  !acc

let size g = List.length (arcs g)

let of_arcs n l =
  let g = create n in
  List.iter (fun (u, v) -> add_arc g u v) l;
  g

let copy g = { n = g.n; adj = Array.map Array.copy g.adj }

let is_antisymmetric g =
  let ok = ref true in
  for u = 0 to g.n - 1 do
    for v = u + 1 to g.n - 1 do
      if g.adj.(u).(v) && g.adj.(v).(u) then ok := false
    done
  done;
  !ok

let is_transitive g =
  let ok = ref true in
  for u = 0 to g.n - 1 do
    for v = 0 to g.n - 1 do
      if g.adj.(u).(v) then
        for w = 0 to g.n - 1 do
          if g.adj.(v).(w) && u <> w && not g.adj.(u).(w) then ok := false
        done
    done
  done;
  !ok

(* Kahn's algorithm; returns the order or None on a cycle. *)
let topological_order g =
  let indeg = Array.make g.n 0 in
  for u = 0 to g.n - 1 do
    for v = 0 to g.n - 1 do
      if g.adj.(u).(v) then indeg.(v) <- indeg.(v) + 1
    done
  done;
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let out = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    out := u :: !out;
    incr count;
    for v = 0 to g.n - 1 do
      if g.adj.(u).(v) then begin
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue
      end
    done
  done;
  if !count = g.n then Some (List.rev !out) else None

let is_acyclic g = topological_order g <> None

let transitive_closure g =
  for k = 0 to g.n - 1 do
    for u = 0 to g.n - 1 do
      if g.adj.(u).(k) then
        for v = 0 to g.n - 1 do
          if g.adj.(k).(v) && u <> v then g.adj.(u).(v) <- true
        done
    done
  done

let transitive_reduction g =
  if not (is_acyclic g) then
    invalid_arg "Digraph.transitive_reduction: graph has a cycle";
  let closure = copy g in
  transitive_closure closure;
  let red = copy closure in
  (* An arc u->v is redundant iff some intermediate w has u->w->v in the
     closure. *)
  for u = 0 to g.n - 1 do
    for v = 0 to g.n - 1 do
      if closure.adj.(u).(v) then
        for w = 0 to g.n - 1 do
          if closure.adj.(u).(w) && closure.adj.(w).(v) then
            red.adj.(u).(v) <- false
        done
    done
  done;
  red

let longest_path_lengths g ~weight =
  match topological_order g with
  | None -> invalid_arg "Digraph.longest_path_lengths: graph has a cycle"
  | Some order ->
    let d = Array.make g.n 0 in
    let process u =
      for v = 0 to g.n - 1 do
        if g.adj.(u).(v) then d.(v) <- max d.(v) (d.(u) + weight u)
      done
    in
    List.iter process order;
    d

let critical_path g ~weight =
  let d = longest_path_lengths g ~weight in
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (d.(v) + weight v)
  done;
  if g.n = 0 then 0 else !best

let to_undirected g =
  let u = Undirected.create g.n in
  for a = 0 to g.n - 1 do
    for b = 0 to g.n - 1 do
      if g.adj.(a).(b) then Undirected.add_edge u a b
    done
  done;
  u

let equal g h =
  g.n = h.n
  &&
  let same = ref true in
  for u = 0 to g.n - 1 do
    for v = 0 to g.n - 1 do
      if g.adj.(u).(v) <> h.adj.(u).(v) then same := false
    done
  done;
  !same

let pp fmt g =
  Format.fprintf fmt "digraph(%d){%a}" g.n
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       (fun fmt (u, v) -> Format.fprintf fmt "%d->%d" u v))
    (arcs g)
