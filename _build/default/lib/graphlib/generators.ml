let path n = Undirected.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: n < 3";
  Undirected.of_edges n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let g = Undirected.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Undirected.add_edge g u v
    done
  done;
  g

let grid ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Generators.grid: empty";
  let g = Undirected.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      if c + 1 < cols then Undirected.add_edge g v (v + 1);
      if r + 1 < rows then Undirected.add_edge g v (v + cols)
    done
  done;
  g

let random ~seed ~n ~edge_probability =
  let rng = Random.State.make [| seed |] in
  let g = Undirected.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < edge_probability then
        Undirected.add_edge g u v
    done
  done;
  g

let random_interval ~seed ~n ~span ~max_len =
  if span < 0 || max_len <= 0 then invalid_arg "Generators.random_interval";
  let rng = Random.State.make [| seed |] in
  let l = Array.init n (fun _ -> Random.State.int rng (span + 1)) in
  let len = Array.init n (fun _ -> 1 + Random.State.int rng max_len) in
  let r = Array.init n (fun i -> l.(i) + len.(i) - 1) in
  let g = Undirected.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if l.(u) <= r.(v) && l.(v) <= r.(u) then Undirected.add_edge g u v
    done
  done;
  (g, (l, r))

let random_dag ~seed ~n ~arc_probability =
  let rng = Random.State.make [| seed |] in
  let d = Digraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < arc_probability then Digraph.add_arc d u v
    done
  done;
  d
