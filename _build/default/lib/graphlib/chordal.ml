let mcs_order g =
  let n = Undirected.order g in
  let weight = Array.make n 0 in
  let picked = Array.make n false in
  let order = Array.make n 0 in
  (* MCS numbers vertices from n-1 down to 0; position 0 of [order] is
     eliminated first, matching the PEO convention. *)
  for pos = n - 1 downto 0 do
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not picked.(v)) && (!best < 0 || weight.(v) > weight.(!best)) then
        best := v
    done;
    let v = !best in
    picked.(v) <- true;
    order.(pos) <- v;
    List.iter
      (fun w -> if not picked.(w) then weight.(w) <- weight.(w) + 1)
      (Undirected.neighbors g v)
  done;
  order

let is_peo g order =
  let n = Undirected.order g in
  if Array.length order <> n then
    invalid_arg "Chordal.is_peo: ordering has wrong length";
  let position = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n || position.(v) >= 0 then
        invalid_arg "Chordal.is_peo: ordering is not a permutation";
      position.(v) <- i)
    order;
  let ok = ref true in
  for i = 0 to n - 1 do
    let v = order.(i) in
    let later =
      List.filter (fun w -> position.(w) > i) (Undirected.neighbors g v)
    in
    (* It suffices to check that the earliest later neighbor is adjacent
       to all other later neighbors (Tarjan-Yannakakis test). *)
    match later with
    | [] -> ()
    | _ ->
      let u =
        List.fold_left
          (fun a b -> if position.(b) < position.(a) then b else a)
          (List.hd later) later
      in
      List.iter
        (fun w -> if w <> u && not (Undirected.mem_edge g u w) then ok := false)
        later
  done;
  !ok

let is_chordal g = is_peo g (mcs_order g)

let find_chordless_cycle g =
  let n = Undirected.order g in
  let result = ref None in
  (* Enumerate induced cycles by DFS over induced paths anchored at their
     minimum vertex. Exponential in the worst case; used only for
     diagnostics on small graphs. *)
  (* [path] is an induced path [last; ...; start] whose internal
     vertices are non-adjacent to [start]. A neighbor [w] of [last]
     extends it if it is non-adjacent to every earlier path vertex; if
     [w] is moreover adjacent to [start] and the cycle has length >= 4,
     we found a chordless cycle. *)
  let rec extend start path =
    if !result <> None then ()
    else
      match path with
      | [] -> assert false
      | last :: rest ->
        let extend_with w =
          if
            !result = None && w > start
            && (not (List.mem w path))
            && List.for_all
                 (fun v -> v = start || not (Undirected.mem_edge g v w))
                 rest
          then
            if Undirected.mem_edge g w start then begin
              if List.length path + 1 >= 4 then
                result := Some (List.rev (w :: path))
            end
            else extend start (w :: path)
        in
        List.iter extend_with (Undirected.neighbors g last)
  in
  let v = ref 0 in
  while !result = None && !v < n do
    List.iter
      (fun w -> if !result = None && w > !v then extend !v [ w; !v ])
      (Undirected.neighbors g !v);
    incr v
  done;
  !result
