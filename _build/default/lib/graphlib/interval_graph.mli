(** Interval graph recognition and interval-model construction.

    A graph is an interval graph iff it is chordal and its complement is
    a comparability graph (Gilmore & Hoffman). This is condition C1 of
    packing classes: each component graph [G_k] must be an interval
    graph.

    Two constructions are provided:
    - {!placement} is the packing primitive (Theorem 1, constructive
      direction): transitively orient the complement and place every
      vertex at its weighted longest-path coordinate. Non-adjacent
      vertices are guaranteed disjoint; adjacent vertices {e may} also
      end up disjoint (which never hurts a packing).
    - {!exact_model} produces a certificate interval model that realizes
      adjacency exactly, using the consecutive ordering of maximal
      cliques; interval lengths are determined by the clique order, not
      prescribed. *)

(** [is_interval g] is [true] iff [g] is an interval graph. *)
val is_interval : Undirected.t -> bool

(** [placement g ~length] computes left endpoints [c] such that
    intervals [[c.(v), c.(v) + length v)] of {e non-adjacent} vertices
    are disjoint, and the total span is the maximum weight of a chain in
    some transitive orientation of the complement. Lengths must be
    positive. Returns [None] when the complement of [g] is not a
    comparability graph (in particular whenever [g] is not an interval
    graph). *)
val placement : Undirected.t -> length:(int -> int) -> int array option

(** [exact_model g] is [Some (l, r)] with closed integer intervals
    [[l.(v), r.(v)]] overlapping exactly when [{u,v}] is an edge of [g];
    [None] iff [g] is not an interval graph. The result is verified
    before being returned. *)
val exact_model : Undirected.t -> (int array * int array) option

(** [separates g ~length c] checks the placement guarantee: intervals of
    non-adjacent vertices are disjoint. *)
val separates : Undirected.t -> length:(int -> int) -> int array -> bool

(** [is_exact_model g (l, r)] checks that the closed intervals realize
    the adjacency of [g] exactly. *)
val is_exact_model : Undirected.t -> int array * int array -> bool

(** [maximal_cliques g] lists all maximal cliques (Bron–Kerbosch), each
    sorted; intended for small graphs. *)
val maximal_cliques : Undirected.t -> int list list
