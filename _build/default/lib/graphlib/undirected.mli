(** Simple undirected graphs on a fixed vertex set [0 .. n-1].

    The representation is a symmetric boolean adjacency matrix, which is
    the right trade-off for the small, dense graphs manipulated by the
    packing-class machinery (component graphs over at most a few dozen
    boxes). All operations are safe: vertex indices are bounds-checked
    and self-loops are rejected. *)

type t

(** [create n] is the edgeless graph on vertices [0 .. n-1]. *)
val create : int -> t

(** Number of vertices. *)
val order : t -> int

(** Number of edges. *)
val size : t -> int

(** [add_edge g u v] adds the edge [{u,v}]. Idempotent.
    @raise Invalid_argument on self-loops or out-of-range vertices. *)
val add_edge : t -> int -> int -> unit

(** [remove_edge g u v] removes the edge [{u,v}] if present. *)
val remove_edge : t -> int -> int -> unit

(** [mem_edge g u v] is [true] iff [{u,v}] is an edge. *)
val mem_edge : t -> int -> int -> bool

(** [neighbors g u] is the sorted list of neighbors of [u]. *)
val neighbors : t -> int -> int list

(** [degree g u] is the number of neighbors of [u]. *)
val degree : t -> int -> int

(** All edges as pairs [(u, v)] with [u < v], lexicographically sorted. *)
val edges : t -> (int * int) list

(** [of_edges n es] builds a graph on [n] vertices with edge list [es]. *)
val of_edges : int -> (int * int) list -> t

(** Deep copy. *)
val copy : t -> t

(** [complement g] has exactly the non-edges of [g] as edges. *)
val complement : t -> t

(** [induced g vs] is the subgraph induced by the vertex list [vs]
    (which must be duplicate-free); vertex [i] of the result corresponds
    to [List.nth vs i]. *)
val induced : t -> int list -> t

(** [is_clique g vs] checks that the vertices [vs] are pairwise adjacent. *)
val is_clique : t -> int list -> bool

(** [is_stable g vs] checks that the vertices [vs] are pairwise non-adjacent. *)
val is_stable : t -> int list -> bool

(** Structural equality (same order and same edge set). *)
val equal : t -> t -> bool

(** [fold_edges f g acc] folds [f] over all edges [(u, v)], [u < v]. *)
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** [iter_edges f g] iterates [f] over all edges [(u, v)], [u < v]. *)
val iter_edges : (int -> int -> unit) -> t -> unit

(** Connected components, each sorted, in increasing order of minimum. *)
val components : t -> int list list

(** Pretty-printer, e.g. [graph(5){0-1, 2-4}]. *)
val pp : Format.formatter -> t -> unit
