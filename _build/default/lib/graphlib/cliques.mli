(** Exact maximum-weight clique and stable set for small graphs.

    The packing-class condition C2 requires that every stable set of a
    component graph fits into the container, i.e. that the maximum
    weight of a clique of pairwise-"comparable" boxes stays within the
    container extent. During the branch-and-bound search these cliques
    live on graphs with a few dozen vertices, so a carefully pruned
    exponential search is both exact and fast. *)

(** [max_weight_clique g ~weight] is [(w, vs)] where [vs] is a clique of
    [g] of maximum total weight [w]. Weights must be non-negative; the
    empty clique (weight 0) is always admissible. *)
val max_weight_clique : Undirected.t -> weight:(int -> int) -> int * int list

(** [max_weight_stable_set g ~weight] is the maximum-weight stable
    (independent) set — the maximum-weight clique of the complement. *)
val max_weight_stable_set :
  Undirected.t -> weight:(int -> int) -> int * int list

(** [exists_clique_heavier g ~weight ~bound] decides whether some clique
    has total weight strictly greater than [bound]; equivalent to
    [fst (max_weight_clique g ~weight) > bound] but can stop early. *)
val exists_clique_heavier : Undirected.t -> weight:(int -> int) -> bound:int -> bool

(** [max_weight_clique_containing g ~weight vs] is the maximum weight of
    a clique containing all vertices of [vs]; [None] if [vs] is not a
    clique itself. Used for incremental C2 checks when a single edge has
    just been fixed. *)
val max_weight_clique_containing :
  Undirected.t -> weight:(int -> int) -> int list -> int option
