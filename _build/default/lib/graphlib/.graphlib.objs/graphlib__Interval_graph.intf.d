lib/graphlib/interval_graph.mli: Undirected
