lib/graphlib/digraph.mli: Format Undirected
