lib/graphlib/digraph.ml: Array Format List Queue Undirected
