lib/graphlib/chordal.mli: Undirected
