lib/graphlib/comparability.ml: Digraph Hashtbl List Queue Undirected
