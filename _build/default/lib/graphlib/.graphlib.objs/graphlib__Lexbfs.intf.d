lib/graphlib/lexbfs.mli: Undirected
