lib/graphlib/cliques.ml: Array Fun List Undirected
