lib/graphlib/generators.mli: Digraph Undirected
