lib/graphlib/generators.ml: Array Digraph List Random Undirected
