lib/graphlib/lexbfs.ml: Array Chordal Fun List Undirected
