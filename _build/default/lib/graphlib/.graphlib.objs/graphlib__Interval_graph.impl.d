lib/graphlib/interval_graph.ml: Array Chordal Comparability Digraph Fun List Undirected
