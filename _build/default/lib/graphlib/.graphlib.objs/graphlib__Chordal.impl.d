lib/graphlib/chordal.ml: Array List Undirected
