lib/graphlib/undirected.ml: Array Format List
