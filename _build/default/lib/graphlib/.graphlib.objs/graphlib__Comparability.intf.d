lib/graphlib/comparability.mli: Digraph Undirected
