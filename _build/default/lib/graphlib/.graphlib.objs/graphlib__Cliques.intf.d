lib/graphlib/cliques.mli: Undirected
