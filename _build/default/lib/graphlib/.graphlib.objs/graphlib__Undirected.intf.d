lib/graphlib/undirected.mli: Format
