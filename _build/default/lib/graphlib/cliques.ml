(* Branch-and-bound over candidate lists: at each step either take the
   first candidate (restricting candidates to its neighbors) or skip it.
   Pruning: current weight + total candidate weight <= best. *)

let check_weights g ~weight =
  for v = 0 to Undirected.order g - 1 do
    if weight v < 0 then invalid_arg "Cliques: negative weight"
  done

let search g ~weight ~stop_above =
  check_weights g ~weight;
  let n = Undirected.order g in
  let best_w = ref 0 in
  let best_set = ref [] in
  let stopped = ref false in
  let by_degree =
    List.sort
      (fun a b -> compare (Undirected.degree g b) (Undirected.degree g a))
      (List.init n Fun.id)
  in
  let total = List.fold_left (fun acc v -> acc + weight v) 0 by_degree in
  let rec go current current_w candidates candidates_w =
    if !stopped then ()
    else begin
      if current_w > !best_w then begin
        best_w := current_w;
        best_set := current;
        match stop_above with
        | Some bound when current_w > bound -> stopped := true
        | _ -> ()
      end;
      match candidates with
      | [] -> ()
      | v :: rest ->
        if current_w + candidates_w > !best_w then begin
          (* Take v. *)
          let nbrs, nbrs_w =
            List.fold_left
              (fun (acc, w) u ->
                if Undirected.mem_edge g v u then (u :: acc, w + weight u)
                else (acc, w))
              ([], 0) rest
          in
          go (v :: current) (current_w + weight v) (List.rev nbrs) nbrs_w;
          (* Skip v. *)
          go current current_w rest (candidates_w - weight v)
        end
    end
  in
  go [] 0 by_degree total;
  (!best_w, List.sort compare !best_set)

let max_weight_clique g ~weight = search g ~weight ~stop_above:None

let max_weight_stable_set g ~weight =
  max_weight_clique (Undirected.complement g) ~weight

let exists_clique_heavier g ~weight ~bound =
  let w, _ = search g ~weight ~stop_above:(Some bound) in
  w > bound

let max_weight_clique_containing g ~weight vs =
  if not (Undirected.is_clique g vs) then None
  else begin
    check_weights g ~weight;
    let n = Undirected.order g in
    let in_vs = Array.make n false in
    List.iter (fun v -> in_vs.(v) <- true) vs;
    let base_w = List.fold_left (fun acc v -> acc + weight v) 0 vs in
    let candidates =
      List.filter
        (fun u ->
          (not in_vs.(u)) && List.for_all (fun v -> Undirected.mem_edge g u v) vs)
        (List.init n Fun.id)
    in
    match candidates with
    | [] -> Some base_w
    | _ ->
      let sub = Undirected.induced g candidates in
      let arr = Array.of_list candidates in
      let w, _ = max_weight_clique sub ~weight:(fun i -> weight arr.(i)) in
      Some (base_w + w)
  end
