(** Lexicographic breadth-first search (Rose–Tarjan–Lueker).

    LexBFS visits vertices so that, on chordal graphs, the reverse visit
    order is a perfect elimination ordering — the classical linear-time
    chordality recognition, independent of the MCS route in {!Chordal}.
    Keeping both lets the test suite cross-validate the two recognizers
    on random graphs. *)

(** [order g ?start ()] is the LexBFS visit order (position 0 visited
    first). [start] chooses the initial vertex (default 0). *)
val order : Undirected.t -> ?start:int -> unit -> int array

(** [elimination_order g] is the reverse of a LexBFS order — a perfect
    elimination ordering iff [g] is chordal. *)
val elimination_order : Undirected.t -> int array

(** [is_chordal g] recognizes chordal graphs via LexBFS + PEO check. *)
val is_chordal : Undirected.t -> bool
