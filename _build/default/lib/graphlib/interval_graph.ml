let is_interval g =
  Chordal.is_chordal g && Comparability.is_comparability (Undirected.complement g)

let separates g ~length c =
  let n = Undirected.order g in
  let disjoint u v =
    c.(u) + length u <= c.(v) || c.(v) + length v <= c.(u)
  in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if (not (Undirected.mem_edge g u v)) && not (disjoint u v) then ok := false
    done
  done;
  !ok

let placement g ~length =
  let n = Undirected.order g in
  for v = 0 to n - 1 do
    if length v <= 0 then invalid_arg "Interval_graph.placement: length <= 0"
  done;
  match Comparability.transitive_orientation (Undirected.complement g) with
  | None -> None
  | Some d ->
    let c = Digraph.longest_path_lengths d ~weight:length in
    assert (separates g ~length c);
    Some c

let maximal_cliques g =
  let n = Undirected.order g in
  let cliques = ref [] in
  (* Bron-Kerbosch with pivoting; candidate/excluded sets as int lists. *)
  let rec bk r p x =
    if p = [] && x = [] then cliques := List.sort compare r :: !cliques
    else begin
      let pivot =
        let candidates = p @ x in
        List.fold_left
          (fun best u ->
            let du = List.length (List.filter (Undirected.mem_edge g u) p) in
            match best with
            | Some (_, db) when db >= du -> best
            | _ -> Some (u, du))
          None candidates
      in
      let pivot_nbrs =
        match pivot with
        | None -> []
        | Some (u, _) -> List.filter (Undirected.mem_edge g u) p
      in
      let to_try = List.filter (fun v -> not (List.mem v pivot_nbrs)) p in
      let p = ref p and x = ref x in
      List.iter
        (fun v ->
          let nb u = Undirected.mem_edge g v u in
          bk (v :: r) (List.filter nb !p) (List.filter nb !x);
          p := List.filter (fun u -> u <> v) !p;
          x := v :: !x)
        to_try
    end
  in
  bk [] (List.init n Fun.id) [];
  List.sort compare !cliques

let is_exact_model g (l, r) =
  let n = Undirected.order g in
  Array.length l = n && Array.length r = n
  &&
  let ok = ref true in
  for u = 0 to n - 1 do
    if l.(u) > r.(u) then ok := false;
    for v = u + 1 to n - 1 do
      let overlap = l.(u) <= r.(v) && l.(v) <= r.(u) in
      if overlap <> Undirected.mem_edge g u v then ok := false
    done
  done;
  !ok

let exact_model g =
  let n = Undirected.order g in
  if n = 0 then Some ([||], [||])
  else
    match Comparability.transitive_orientation (Undirected.complement g) with
    | None -> None
    | Some d ->
      if not (Chordal.is_chordal g) then None
      else begin
        let cliques = Array.of_list (maximal_cliques g) in
        (* Order maximal cliques along the interval order: A before B iff
           some a in A \ B precedes some b in B \ A in the orientation of
           the complement. For interval graphs this comparator is a
           linear order giving a consecutive arrangement. *)
        let before a b =
          let a_only = List.filter (fun v -> not (List.mem v b)) a in
          let b_only = List.filter (fun v -> not (List.mem v a)) b in
          List.exists
            (fun u -> List.exists (fun v -> Digraph.mem_arc d u v) b_only)
            a_only
        in
        let cmp a b = if a = b then 0 else if before a b then -1 else 1 in
        Array.sort cmp cliques;
        let l = Array.make n max_int and r = Array.make n min_int in
        Array.iteri
          (fun i clique ->
            List.iter
              (fun v ->
                l.(v) <- min l.(v) i;
                r.(v) <- max r.(v) i)
              clique)
          cliques;
        let model = (l, r) in
        if is_exact_model g model then Some model else None
      end
