(* Directed edges are encoded as [a * n + b] for bookkeeping. *)

let implication_class_in g a b =
  if not (Undirected.mem_edge g a b) then
    invalid_arg "Comparability.implication_class: not an edge";
  let n = Undirected.order g in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push u v =
    let key = (u * n) + v in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add (u, v) queue
    end
  in
  push a b;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let u, v = Queue.pop queue in
    acc := (u, v) :: !acc;
    (* (u,v) Γ (u,c) when {v,c} is a non-edge. *)
    List.iter
      (fun c -> if c <> v && not (Undirected.mem_edge g v c) then push u c)
      (Undirected.neighbors g u);
    (* (u,v) Γ (d,v) when {u,d} is a non-edge. *)
    List.iter
      (fun d -> if d <> u && not (Undirected.mem_edge g u d) then push d v)
      (Undirected.neighbors g v)
  done;
  (List.rev !acc, seen)

let implication_class g a b = fst (implication_class_in g a b)

let class_is_consistent n (cls, seen) =
  List.for_all (fun (u, v) -> not (Hashtbl.mem seen ((v * n) + u))) cls

let is_comparability g =
  let n = Undirected.order g in
  let classified = Hashtbl.create 64 in
  let ok = ref true in
  Undirected.iter_edges
    (fun u v ->
      if !ok && not (Hashtbl.mem classified ((u * n) + v)) then begin
        let (cls, _) as icls = implication_class_in g u v in
        if not (class_is_consistent n icls) then ok := false
        else
          List.iter
            (fun (a, b) ->
              Hashtbl.replace classified ((a * n) + b) ();
              Hashtbl.replace classified ((b * n) + a) ())
            cls
      end)
    g;
  !ok

let verify_orientation g d =
  let ok = ref true in
  Undirected.iter_edges
    (fun u v ->
      let fwd = Digraph.mem_arc d u v and bwd = Digraph.mem_arc d v u in
      if fwd = bwd then ok := false)
    g;
  !ok
  && Digraph.size d = Undirected.size g
  && Digraph.is_transitive d
  && Digraph.is_acyclic d

let transitive_orientation g =
  let n = Undirected.order g in
  let remaining = Undirected.copy g in
  let d = Digraph.create n in
  let failed = ref false in
  (* Classical TRO scheme (Golumbic, Algorithm 5.2): orient an arbitrary
     implication class of the remaining graph, remove its underlying
     edges, repeat. For comparability graphs any choice sequence yields
     a transitive orientation; we verify the result regardless. *)
  let rec step () =
    if !failed then ()
    else
      match Undirected.edges remaining with
      | [] -> ()
      | (a, b) :: _ ->
        let (cls, _) as icls = implication_class_in remaining a b in
        if not (class_is_consistent n icls) then failed := true
        else begin
          List.iter
            (fun (u, v) ->
              Digraph.add_arc d u v;
              Undirected.remove_edge remaining u v)
            cls;
          step ()
        end
  in
  step ();
  if !failed then None else if verify_orientation g d then Some d else None

let max_weight_clique_of_orientation d ~weight = Digraph.critical_path d ~weight
