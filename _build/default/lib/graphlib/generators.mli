(** Named graph families and seeded random graphs, shared by tests,
    examples and benchmarks. *)

(** [path n] is the path on [n] vertices, [0 - 1 - ... - n-1]. *)
val path : int -> Undirected.t

(** [cycle n] is the cycle on [n >= 3] vertices. *)
val cycle : int -> Undirected.t

(** [complete n] is the clique on [n] vertices. *)
val complete : int -> Undirected.t

(** [grid ~rows ~cols] is the king-free rectangular grid graph. *)
val grid : rows:int -> cols:int -> Undirected.t

(** [random ~seed ~n ~edge_probability] — every pair independently an
    edge with the given probability; deterministic in [seed]. *)
val random : seed:int -> n:int -> edge_probability:float -> Undirected.t

(** [random_interval ~seed ~n ~span ~max_len] builds an interval graph
    from a random interval model (left endpoints in [0 .. span], lengths
    in [1 .. max_len]), returning the graph and the model. *)
val random_interval :
  seed:int ->
  n:int ->
  span:int ->
  max_len:int ->
  Undirected.t * (int array * int array)

(** [random_dag ~seed ~n ~arc_probability] orients random forward pairs
    [(i, j)], [i < j]. *)
val random_dag : seed:int -> n:int -> arc_probability:float -> Digraph.t
