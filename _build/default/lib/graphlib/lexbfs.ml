(* Partition-refinement LexBFS: maintain an ordered list of classes;
   visiting a vertex splits every class into (neighbors, others), with
   neighbors moving ahead. O(n^2) with simple lists — ample for the
   graph sizes handled here. *)

let order g ?(start = 0) () =
  let n = Undirected.order g in
  if n = 0 then [||]
  else begin
    if start < 0 || start >= n then invalid_arg "Lexbfs.order: bad start";
    let initial = start :: List.filter (fun v -> v <> start) (List.init n Fun.id) in
    let visit = Array.make n (-1) in
    let rec loop classes pos =
      match classes with
      | [] -> ()
      | [] :: rest -> loop rest pos
      | (v :: members) :: rest ->
        visit.(pos) <- v;
        let refine cls =
          let nbrs, others =
            List.partition (fun u -> Undirected.mem_edge g u v) cls
          in
          List.filter (fun c -> c <> []) [ nbrs; others ]
        in
        loop (List.concat_map refine (members :: rest)) (pos + 1)
    in
    loop [ initial ] 0;
    visit
  end

let elimination_order g =
  let visit = order g () in
  let n = Array.length visit in
  Array.init n (fun i -> visit.(n - 1 - i))

let is_chordal g = Chordal.is_peo g (elimination_order g)
