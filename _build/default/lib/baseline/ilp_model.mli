(** The grid-indexed 0-1 ILP formulation the paper argues against.

    Following Beasley-style exact models ([2] in the paper), placement
    of module [i] at position [(x, y)] and start time [t] is a 0-1
    variable [p_{i,x,y,t}]; assignment constraints force one position
    per module, and capacity constraints forbid two modules on one cell
    in one cycle. The paper's point (Sec. 1) is that this needs
    [n * X * Y * T] variables and [X * Y * T] capacity constraints,
    which is hopeless at FPGA scale ("solving a three-dimensional
    problem with about 32^3 nodes is hopeless").

    This module reproduces that argument quantitatively: it builds the
    model {e size} analytically, can emit the full model in LP format
    for small instances, and solves truly tiny models by exhaustive
    enumeration (as a correctness cross-check). *)

type size = {
  variables : int; (** placement variables (feasible anchors only) *)
  dense_variables : int; (** the paper's n * X * Y * T count *)
  assignment_constraints : int;
  capacity_constraints : int;
  precedence_constraints : int;
}

(** [size_of instance container] computes the model size. [variables]
    counts only anchors where the module fits the container (the
    tightest reasonable formulation); [dense_variables] is the naive
    grid product quoted by the paper. *)
val size_of : Packing.Instance.t -> Geometry.Container.t -> size

(** [to_lp instance container] renders the model in LP format (CPLEX
    dialect). Intended for small instances; the output grows with the
    variable count. *)
val to_lp : Packing.Instance.t -> Geometry.Container.t -> string

(** [solve_tiny instance container ~variable_limit] decides feasibility
    by exhaustive enumeration over anchor combinations, refusing
    (returning [None]) when the model exceeds [variable_limit]
    variables. Exact on the instances it accepts — used to cross-check
    the packing solver in tests. *)
val solve_tiny :
  Packing.Instance.t ->
  Geometry.Container.t ->
  variable_limit:int ->
  bool option

val pp_size : Format.formatter -> size -> unit
