module Container = Geometry.Container
module Instance = Packing.Instance

type size = {
  variables : int;
  dense_variables : int;
  assignment_constraints : int;
  capacity_constraints : int;
  precedence_constraints : int;
}

let anchors inst cont i =
  let xs = Container.extent cont 0 - Instance.extent inst i 0 + 1 in
  let ys = Container.extent cont 1 - Instance.extent inst i 1 + 1 in
  let ts = Container.extent cont 2 - Instance.duration inst i + 1 in
  if xs <= 0 || ys <= 0 || ts <= 0 then 0 else xs * ys * ts

let size_of inst cont =
  if Instance.dim inst <> 3 then invalid_arg "Ilp_model: expects 3 dimensions";
  let n = Instance.count inst in
  let variables = ref 0 in
  for i = 0 to n - 1 do
    variables := !variables + anchors inst cont i
  done;
  let cells = Container.volume cont in
  {
    variables = !variables;
    dense_variables = n * cells;
    assignment_constraints = n;
    capacity_constraints = cells;
    precedence_constraints =
      List.length (Order.Partial_order.relations (Instance.precedence inst));
  }

let iter_anchors inst cont i f =
  let w = Instance.extent inst i 0
  and h = Instance.extent inst i 1
  and d = Instance.duration inst i in
  for x = 0 to Container.extent cont 0 - w do
    for y = 0 to Container.extent cont 1 - h do
      for t = 0 to Container.extent cont 2 - d do
        f ~x ~y ~t
      done
    done
  done

let var_name i ~x ~y ~t = Printf.sprintf "p_%d_%d_%d_%d" i x y t

let covers inst i ~x ~y ~t ~cx ~cy ~ct =
  cx >= x
  && cx < x + Instance.extent inst i 0
  && cy >= y
  && cy < y + Instance.extent inst i 1
  && ct >= t
  && ct < t + Instance.duration inst i

let to_lp inst cont =
  let n = Instance.count inst in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "\\ grid-indexed 0-1 placement model\nMinimize\n obj: 0\nSubject To\n";
  (* Assignment: every module placed exactly once. *)
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf " assign_%d:" i);
    iter_anchors inst cont i (fun ~x ~y ~t ->
        Buffer.add_string buf (" + " ^ var_name i ~x ~y ~t));
    Buffer.add_string buf " = 1\n"
  done;
  (* Capacity: each cell-cycle used at most once. *)
  for cx = 0 to Container.extent cont 0 - 1 do
    for cy = 0 to Container.extent cont 1 - 1 do
      for ct = 0 to Container.extent cont 2 - 1 do
        let terms = Buffer.create 64 in
        for i = 0 to n - 1 do
          iter_anchors inst cont i (fun ~x ~y ~t ->
              if covers inst i ~x ~y ~t ~cx ~cy ~ct then
                Buffer.add_string terms (" + " ^ var_name i ~x ~y ~t))
        done;
        if Buffer.length terms > 0 then
          Buffer.add_string buf
            (Printf.sprintf " cap_%d_%d_%d:%s <= 1\n" cx cy ct
               (Buffer.contents terms))
      done
    done
  done;
  (* Precedence: finish(u) <= start(v) expressed on start-time sums. *)
  List.iter
    (fun (u, v) ->
      Buffer.add_string buf (Printf.sprintf " prec_%d_%d:" u v);
      iter_anchors inst cont u (fun ~x ~y ~t ->
          Buffer.add_string buf
            (Printf.sprintf " + %d %s" t (var_name u ~x ~y ~t)));
      iter_anchors inst cont v (fun ~x ~y ~t ->
          Buffer.add_string buf
            (Printf.sprintf " - %d %s" t (var_name v ~x ~y ~t)));
      Buffer.add_string buf
        (Printf.sprintf " <= -%d\n" (Instance.duration inst u)))
    (Order.Partial_order.relations (Instance.precedence inst));
  Buffer.add_string buf "Binary\n";
  for i = 0 to n - 1 do
    iter_anchors inst cont i (fun ~x ~y ~t ->
        Buffer.add_string buf (" " ^ var_name i ~x ~y ~t ^ "\n"))
  done;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let solve_tiny inst cont ~variable_limit =
  let s = size_of inst cont in
  if s.variables > variable_limit then None
  else begin
    let n = Instance.count inst in
    let anchor_list i =
      let acc = ref [] in
      iter_anchors inst cont i (fun ~x ~y ~t -> acc := [| x; y; t |] :: !acc);
      List.rev !acc
    in
    let anchor_arrays = Array.init n anchor_list in
    let chosen = Array.make n [| 0; 0; 0 |] in
    let rec go i =
      if i = n then
        Geometry.Placement.is_feasible
          (Geometry.Placement.make (Instance.boxes inst) (Array.map Array.copy chosen))
          ~container:cont ~precedes:(Instance.precedes inst)
      else
        List.exists
          (fun a ->
            chosen.(i) <- a;
            go (i + 1))
          anchor_arrays.(i)
    in
    Some (go 0)
  end

let pp_size fmt s =
  Format.fprintf fmt
    "%d variables (dense: %d), %d assignment + %d capacity + %d precedence \
     constraints"
    s.variables s.dense_variables s.assignment_constraints
    s.capacity_constraints s.precedence_constraints
