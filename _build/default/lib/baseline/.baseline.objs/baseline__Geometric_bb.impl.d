lib/baseline/geometric_bb.ml: Array Fun Geometry List Order Packing
