lib/baseline/geometric_bb.mli: Geometry Packing
