lib/baseline/ilp_model.mli: Format Geometry Packing
