lib/baseline/ilp_model.ml: Array Buffer Format Geometry List Order Packing Printf
