(* Capacity planning with the orthogonal knapsack: when the chip and the
   deadline cannot accommodate the full task set, which subset of the
   computation should stay in hardware? Values are computation volumes
   (cells x cycles): keep the work that is most expensive to move to
   software. Also shows the stage-1 bound certificates and the size of
   the grid ILP model the paper argues against.

   Run with: dune exec examples/capacity_planning.exe *)

let () =
  let de = Benchmarks.De.instance in

  (* The full DE set needs a 16x16 chip and 14 cycles. Tighten the
     deadline to 8 cycles on the same chip: infeasible — what fits? *)
  let chip = Fpga.Chip.square 16 in
  let t_max = 8 in
  let container = Fpga.Chip.container chip ~t_max in

  (match Packing.Bounds.check de container with
  | Packing.Bounds.Infeasible reason ->
    Format.printf "full task set on %a in %d cycles: infeasible (%s)@."
      Fpga.Chip.pp chip t_max reason
  | Packing.Bounds.Unknown -> (
    match Packing.Opp_solver.solve de container with
    | Packing.Opp_solver.Infeasible, _ ->
      Format.printf "full task set on %a in %d cycles: infeasible (search)@."
        Fpga.Chip.pp chip t_max
    | _ -> Format.printf "full task set fits?!@."));

  let value i = Geometry.Box.volume (Packing.Instance.box de i) in
  (match Packing.Knapsack.solve de container ~value with
  | None -> Format.printf "nothing fits@."
  | Some { Packing.Knapsack.value; selected; placement } ->
    Format.printf "@.best hardware subset (kept volume %d of %d):@." value
      (Packing.Instance.total_volume de);
    List.iter
      (fun i -> Format.printf "  %s@." (Packing.Instance.label de i))
      selected;
    Format.printf "@.%s@." (Geometry.Render.gantt placement));

  (* The model-size argument from the paper's introduction: the
     grid-indexed 0-1 ILP for the same question. *)
  let size = Baseline.Ilp_model.size_of de container in
  Format.printf "grid 0-1 ILP for the same container: %a@."
    Baseline.Ilp_model.pp_size size;
  let big = Fpga.Chip.container (Fpga.Chip.square 32) ~t_max:14 in
  Format.printf "...and on the paper's 32x32x14 scale: %a@."
    Baseline.Ilp_model.pp_size
    (Baseline.Ilp_model.size_of de big)
