examples/random_sweep.mli:
