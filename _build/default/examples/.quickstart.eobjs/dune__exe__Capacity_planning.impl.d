examples/capacity_planning.ml: Baseline Benchmarks Format Fpga Geometry List Packing
