examples/quickstart.mli:
