examples/fixed_schedule.ml: Array Benchmarks Format Geometry Order Packing
