examples/fixed_schedule.mli:
