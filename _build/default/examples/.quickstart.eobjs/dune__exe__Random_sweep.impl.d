examples/random_sweep.ml: Baseline Benchmarks Format Geometry Packing
