examples/video_codec.ml: Benchmarks Format Fpga Geometry Packing
