examples/online_reconfig.ml: Benchmarks Format Fpga List Packing
