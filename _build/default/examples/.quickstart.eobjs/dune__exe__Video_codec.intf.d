examples/video_codec.mli:
