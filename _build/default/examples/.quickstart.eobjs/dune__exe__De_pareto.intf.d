examples/de_pareto.mli:
