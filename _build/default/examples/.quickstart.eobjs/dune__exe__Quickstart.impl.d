examples/quickstart.ml: Format Fpga Geometry Packing
