examples/online_reconfig.mli:
