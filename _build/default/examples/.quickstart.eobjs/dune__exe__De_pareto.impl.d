examples/de_pareto.ml: Benchmarks Format Geometry List Packing
