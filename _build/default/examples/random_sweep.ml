(* Random-instance sweep: compare the packing-class solver against the
   naive geometric branch-and-bound baseline on generated workloads, and
   sanity-check both against guillotine instances that are feasible by
   construction.

   Run with: dune exec examples/random_sweep.exe *)

let () =
  Format.printf
    "seed  n  verdict      packing-nodes  geometric-nodes  agree@.";
  let geometric_budget = 2_000_000 in
  for seed = 1 to 12 do
    let inst =
      Benchmarks.Generate.random ~seed ~n:6 ~max_extent:4 ~max_duration:3
        ~arc_probability:0.2 ()
    in
    let container = Geometry.Container.make3 ~w:6 ~h:6 ~t_max:6 in
    let options =
      (* Search only: measure tree sizes, not heuristic luck. *)
      {
        Packing.Opp_solver.default_options with
        use_bounds = false;
        use_heuristic = false;
      }
    in
    let outcome, stats = Packing.Opp_solver.solve ~options inst container in
    let base_outcome, base_stats =
      Baseline.Geometric_bb.solve ~node_limit:geometric_budget inst container
    in
    let verdict = Format.asprintf "%a" Packing.Opp_solver.pp_outcome outcome in
    let agree =
      match (outcome, base_outcome) with
      | Packing.Opp_solver.Feasible _, Baseline.Geometric_bb.Feasible _
      | Packing.Opp_solver.Infeasible, Baseline.Geometric_bb.Infeasible ->
        "yes"
      | _, Baseline.Geometric_bb.Timeout -> "baseline gave up"
      | _ -> "NO!"
    in
    Format.printf "%4d %2d  %-12s %13d  %15d  %s@." seed
      (Packing.Instance.count inst)
      verdict stats.Packing.Opp_solver.nodes base_stats.Baseline.Geometric_bb.nodes
      agree
  done;

  (* Guillotine instances: always feasible; the solver must agree. *)
  Format.printf "@.guillotine instances (feasible by construction):@.";
  for seed = 1 to 8 do
    let container = Geometry.Container.make3 ~w:8 ~h:8 ~t_max:8 in
    let inst, _witness =
      Benchmarks.Generate.guillotine ~seed ~container ~cuts:6
        ~arc_probability:0.3 ()
    in
    let outcome, stats = Packing.Opp_solver.solve inst container in
    Format.printf "  seed %d: %d pieces -> %a (nodes=%d)@." seed
      (Packing.Instance.count inst)
      Packing.Opp_solver.pp_outcome outcome stats.Packing.Opp_solver.nodes
  done
