(* fpga_place: command-line front end for the packing-class placement
   engine. See `fpga_place --help` and the instance format documented in
   Fpga.Instance_io. *)

open Cmdliner

let read_instance path =
  try Ok (Fpga.Instance_io.parse_file path) with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg

let chip_conv =
  let parse s =
    match String.split_on_char 'x' (String.lowercase_ascii s) with
    | [ w; h ] -> (
      match (int_of_string_opt w, int_of_string_opt h) with
      | Some w, Some h when w > 0 && h > 0 -> Ok (Fpga.Chip.create ~w ~h)
      | _ -> Error (`Msg "expected WxH with positive integers"))
    | _ -> Error (`Msg "expected WxH, e.g. 32x32")
  in
  let print fmt c = Format.fprintf fmt "%dx%d" (Fpga.Chip.width c) (Fpga.Chip.height c) in
  Arg.conv (parse, print)

(* E0xE1x...xE(d-1): a container extent tuple of any dimension. *)
let dims_conv =
  let parse s =
    let parts = String.split_on_char 'x' (String.lowercase_ascii s) in
    let ints = List.map int_of_string_opt parts in
    if parts <> [] && List.for_all (function Some e -> e > 0 | None -> false) ints
    then Ok (Array.of_list (List.map Option.get ints))
    else Error (`Msg "expected positive extents, e.g. 8x6x14")
  in
  let print fmt a =
    Format.fprintf fmt "%s"
      (String.concat "x" (Array.to_list (Array.map string_of_int a)))
  in
  Arg.conv (parse, print)

let container_opt =
  Arg.(value & opt (some dims_conv) None
       & info [ "container" ] ~docv:"E0x..xE(d-1)"
           ~doc:"Target container extents, one per instance axis — the \
                 dimension-generic alternative to --chip/--time. Overrides \
                 the file's `container` line.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance file.")

let chip_opt =
  Arg.(value & opt (some chip_conv) None
       & info [ "chip" ] ~docv:"WxH" ~doc:"Target chip, overriding the file.")

let time_opt =
  Arg.(value & opt (some int) None
       & info [ "time" ] ~docv:"T" ~doc:"Makespan budget, overriding the file.")

let render_flag =
  Arg.(value & flag & info [ "render" ] ~doc:"Render chip occupancy over time.")

let quiet_flag =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Print only the verdict/optimum.")

let resolve_chip io = function
  | Some c -> Ok c
  | None -> (
    match io.Fpga.Instance_io.chip with
    | Some c -> Ok c
    | None -> Error "no chip: pass --chip WxH or add a `chip` line to the file")

let resolve_time io = function
  | Some t -> Ok t
  | None -> (
    match io.Fpga.Instance_io.t_max with
    | Some t -> Ok t
    | None -> Error "no time budget: pass --time T or add a `time` line")

(* Resolve the target container for a dimension-generic subcommand:
   --container, then the file's `container` line, then (3-dimensional
   instances only) the chip/time surface. *)
let resolve_container io ~chip ~time container_arg =
  let inst = io.Fpga.Instance_io.instance in
  let d = Packing.Instance.dim inst in
  let of_extents exts =
    if Array.length exts <> d then
      Error
        (Printf.sprintf "container has %d extents but the instance is %d-dimensional"
           (Array.length exts) d)
    else
      try Ok (`Container (Geometry.Container.make exts))
      with Invalid_argument m -> Error m
  in
  match container_arg with
  | Some exts -> of_extents exts
  | None -> (
    match io.Fpga.Instance_io.container with
    | Some c ->
      if Geometry.Container.dim c <> d then
        Error "the file's container dimension does not match its tasks"
      else Ok (`Container c)
    | None ->
      if d = 3 then
        match (resolve_chip io chip, resolve_time io time) with
        | Error m, _ | _, Error m -> Error m
        | Ok chip, Ok t_max -> Ok (`Chip (chip, t_max))
      else
        Error
          "no container: pass --container E0x..xE(d-1) or add a `container` \
           line to the file")

(* Label + origin tuple per task, for instances outside the 3-dimensional
   chip surface (no Gantt/occupancy rendering there). *)
let show_placement_ddim ~quiet inst placement =
  if not quiet then begin
    Format.printf "placement:@.";
    for i = 0 to Packing.Instance.count inst - 1 do
      let o = Geometry.Placement.origin placement i in
      Format.printf "  %-8s at (%s)@."
        (Packing.Instance.label inst i)
        (String.concat ","
           (Array.to_list (Array.map string_of_int o)))
    done
  end

let pp_container fmt c =
  Format.fprintf fmt "%s"
    (String.concat "x"
       (List.init (Geometry.Container.dim c) (fun k ->
            string_of_int (Geometry.Container.extent c k))))

let show_placement ~quiet ~render inst chip t_max placement =
  if not quiet then begin
    Format.printf "schedule:@.";
    for i = 0 to Packing.Instance.count inst - 1 do
      let o = Geometry.Placement.origin placement i in
      Format.printf "  %-8s at (%d,%d) cycles [%d,%d)@."
        (Packing.Instance.label inst i)
        o.(0) o.(1) o.(2)
        (o.(2) + Packing.Instance.duration inst i)
    done;
    Format.printf "%s@." (Geometry.Render.gantt placement);
    if render then
      Format.printf "%s@."
        (Geometry.Render.timeline placement
           ~container:(Fpga.Chip.container chip ~t_max))
  end

let err msg =
  Format.eprintf "error: %s@." msg;
  1

let svg_opt =
  Arg.(value & opt (some string) None
       & info [ "svg" ] ~docv:"FILE" ~doc:"Write an SVG storyboard of the schedule.")

let write_svg inst chip t_max placement = function
  | None -> ()
  | Some path ->
    let svg =
      Geometry.Svg.storyboard placement
        ~container:(Fpga.Chip.container chip ~t_max)
        ~labels:(Packing.Instance.label inst)
        ()
    in
    let oc = open_out path in
    output_string oc svg;
    close_out oc;
    Format.printf "wrote %s@." path

let jobs_opt =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the search; 1 runs sequentially, N > 1 \
                 runs a work-stealing pool: each domain donates alternative \
                 branches from shallow nodes of its subtree and steals the \
                 shallowest available subtree from the fullest victim when \
                 dry.")

let time_limit_opt =
  Arg.(value & opt (some float) None
       & info [ "time-limit" ] ~docv:"S"
           ~doc:"Wall-clock budget in seconds; an expired budget reports a \
                 timeout (exit code 3), never a wrong verdict.")

let stats_opt =
  Arg.(value & opt (some (enum [ ("json", `Json) ])) None
       & info [ "stats" ] ~docv:"FMT"
           ~doc:"Print solver statistics in the given format (only: json). \
                 With --jobs > 1 the report includes per-worker counters.")

let realize_opt =
  Arg.(value
       & opt (enum [ ("adaptive", `Adaptive); ("always", `Always); ("never", `Never) ])
           `Adaptive
       & info [ "realize" ] ~docv:"POLICY"
           ~doc:"Throttle for the per-node early-realization attempt: \
                 adaptive (default; attempt only once enough pairs are \
                 decided, with exponential backoff on failures), always \
                 (every node, the pre-throttle behavior), or never (exact \
                 leaf checks only). The verdict is identical under every \
                 policy; only the search speed changes.")

let node_bounds_opt =
  Arg.(value
       & opt (enum [ ("adaptive", `Adaptive); ("always", `Always); ("never", `Never) ])
           `Adaptive
       & info [ "node-bounds" ] ~docv:"POLICY"
           ~doc:"Throttle for the in-search bound-engine check on the \
                 committed time arcs of the current node: adaptive \
                 (default; check only once enough pairs are decided, with \
                 exponential backoff on silent verdicts), always (every \
                 node), or never (root bounds only). The engine emits exact \
                 certificates, so the verdict is identical under every \
                 policy; only the search speed changes.")

let trace_opt =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a structured search trace. A .json suffix writes \
                 Chrome trace-event format (load in chrome://tracing or \
                 Perfetto); any other name writes JSONL, one event per line \
                 (see `trace-summary`).")

let progress_opt =
  Arg.(value & opt ~vopt:(Some 1.0) (some float) None
       & info [ "progress" ] ~docv:"SECONDS"
           ~doc:"Print a live progress heartbeat to stderr (nodes/s, depth, \
                 decided fraction, bracket) every $(docv) seconds \
                 (default 1.0 when the flag is given bare).")

let heartbeat_line (p : Packing.Telemetry.progress) =
  let b = Buffer.create 96 in
  Printf.bprintf b
    "[%7.1fs] %d nodes (%.0f/s) depth %d decided %.1f%% trail %d" p.elapsed_s
    p.nodes p.nodes_per_s p.max_depth
    (100.0 *. p.decided_fraction)
    p.trail_length;
  (match p.bracket with
  | Some (lo, hi) -> Printf.bprintf b " bracket [%d,%d]" lo hi
  | None -> ());
  (match p.gap with Some g -> Printf.bprintf b " gap %d" g | None -> ());
  Buffer.contents b

(* Heartbeats may fire concurrently from every domain of a parallel
   solve; route them through one serialized writer so lines never
   splice (the same funnel the serve subcommand uses for JSONL). *)
let stderr_writer = lazy (Service.Writer.of_channel stderr)

(* Install the --trace / --progress plumbing into solver options.
   Returns the adjusted options plus a closure that writes the trace
   file once the solve is done (events live in memory until then). *)
let with_observability options trace_file progress =
  let trace =
    match trace_file with
    | None -> Packing.Trace.null
    | Some _ -> Packing.Trace.create ()
  in
  let options = { options with Packing.Opp_solver.trace } in
  let options =
    match progress with
    | None -> options
    | Some interval ->
      {
        options with
        Packing.Opp_solver.progress_interval_s = interval;
        on_heartbeat =
          Some
            (fun p ->
              Service.Writer.line (Lazy.force stderr_writer)
                (heartbeat_line p));
      }
  in
  let write_trace () =
    match trace_file with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      if Filename.check_suffix path ".json" then
        Packing.Trace.write_chrome trace oc
      else Packing.Trace.write_jsonl trace oc;
      close_out oc;
      Format.eprintf "wrote %s@." path
  in
  (options, write_trace)

let options_with_deadline time_limit realize node_bounds =
  let policy = function
    | `Adaptive -> None
    | `Always -> Some Packing.Opp_solver.Realize_always
    | `Never -> Some Packing.Opp_solver.Realize_never
  in
  let realize =
    Option.value (policy realize) ~default:Packing.Opp_solver.default_realize
  in
  let node_bounds =
    Option.value (policy node_bounds)
      ~default:Packing.Opp_solver.default_node_bounds
  in
  let options =
    { Packing.Opp_solver.default_options with realize; node_bounds }
  in
  match time_limit with
  | None -> options
  | Some s -> { options with deadline = Some (Unix.gettimeofday () +. s) }

let no_heuristic_flag =
  Arg.(value & flag
       & info [ "no-heuristic" ]
           ~doc:"Skip the stage-2 construction heuristic and go straight to \
                 the branch-and-bound search (useful with --trace to record \
                 search events on instances the heuristic would settle).")

let solve_cmd =
  let run file chip time container_arg render quiet svg jobs time_limit stats
      realize node_bounds trace_file progress no_heuristic =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match resolve_container io ~chip ~time container_arg with
      | Error msg -> err msg
      | Ok target -> (
        let inst = io.Fpga.Instance_io.instance in
        let container =
          match target with
          | `Chip (chip, t_max) -> Fpga.Chip.container chip ~t_max
          | `Container c -> c
        in
        let options = options_with_deadline time_limit realize node_bounds in
        let options =
          if no_heuristic then
            { options with Packing.Opp_solver.use_heuristic = false }
          else options
        in
        let options, write_trace =
          with_observability options trace_file progress
        in
        let finish outcome pp_report =
          write_trace ();
          match outcome with
          | Packing.Opp_solver.Feasible p ->
            (match target with
            | `Chip (chip, t_max) ->
              Format.printf "feasible on %a within %d cycles (%t)@."
                Fpga.Chip.pp chip t_max pp_report;
              show_placement ~quiet ~render inst chip t_max p;
              write_svg inst chip t_max p svg
            | `Container c ->
              Format.printf "feasible in %a (%t)@." pp_container c pp_report;
              show_placement_ddim ~quiet inst p);
            0
          | Packing.Opp_solver.Infeasible ->
            Format.printf "infeasible (%t)@." pp_report;
            2
          | Packing.Opp_solver.Timeout ->
            Format.printf "timeout (%t)@." pp_report;
            3
        in
        if jobs > 1 then begin
          let r = Packing.Parallel_solver.solve ~options ~jobs inst container in
          (match stats with
          | Some `Json ->
            Format.printf "%s@." (Packing.Parallel_solver.report_to_json r)
          | None -> ());
          finish r.Packing.Parallel_solver.outcome (fun fmt ->
              Format.fprintf fmt "%d jobs, %d tasks, %d steals, %a" r.jobs
                r.tasks r.steals Packing.Opp_solver.pp_stats
                r.Packing.Parallel_solver.stats)
        end
        else begin
          let outcome, st = Packing.Opp_solver.solve ~options inst container in
          (match stats with
          | Some `Json ->
            Format.printf "%s@." (Packing.Opp_solver.stats_to_json st)
          | None -> ());
          finish outcome (fun fmt -> Packing.Opp_solver.pp_stats fmt st)
        end))
  in
  let doc = "Decide feasibility of a placement (FeasAT&FindS)." in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(const run $ file_arg $ chip_opt $ time_opt $ container_opt
          $ render_flag $ quiet_flag
          $ svg_opt $ jobs_opt $ time_limit_opt $ stats_opt $ realize_opt
          $ node_bounds_opt $ trace_opt $ progress_opt $ no_heuristic_flag)

(* Collect the probe trace for --stats json; the returned callback is
   handed to the Problems driver as [on_probe]. *)
let probe_collector () =
  let acc = ref [] in
  let on_probe p = acc := p :: !acc in
  ((fun () -> List.rev !acc), on_probe)

(* One-line JSON for an anytime minimization: status, value/bounds, and
   the per-probe trace. *)
let anytime_stats_json ~problem ~value_json result probes =
  let open Packing.Telemetry in
  let fields =
    match result with
    | Packing.Problems.Optimal { value; _ } -> [ ("value", value_json value) ]
    | Packing.Problems.Feasible_incumbent
        { incumbent = { value; _ }; lower_bound; gap } ->
      [
        ("value", value_json value);
        ("lower_bound", Int lower_bound);
        ("gap", Int gap);
      ]
    | Packing.Problems.Infeasible -> []
    | Packing.Problems.Unknown { lower_bound } ->
      [ ("lower_bound", Int lower_bound) ]
  in
  to_string
    (Obj
       ([
          ("problem", String problem);
          ("status", String (Packing.Problems.status_string result));
        ]
       @ fields
       @ [
           ("probes", List (List.map Packing.Problems.probe_json probes));
           ( "bounds",
             bounds_to_json
               (List.fold_left
                  (fun acc (p : Packing.Problems.probe) ->
                    add_bound_counters acc p.Packing.Problems.bounds)
                  [] probes) );
         ]))

let min_time_cmd =
  let run file chip render quiet jobs time_limit stats realize node_bounds
      trace_file progress =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match resolve_chip io chip with
      | Error msg -> err msg
      | Ok chip ->
        let inst = io.Fpga.Instance_io.instance in
        let options = options_with_deadline time_limit realize node_bounds in
        let options, write_trace =
          with_observability options trace_file progress
        in
        let probes, on_probe = probe_collector () in
        let result =
          Packing.Problems.minimize_time ~options ~jobs ~on_probe inst
            ~w:(Fpga.Chip.width chip) ~h:(Fpga.Chip.height chip)
        in
        write_trace ();
        (match stats with
        | Some `Json ->
          Format.printf "%s@."
            (anytime_stats_json ~problem:"min-time"
               ~value_json:(fun v -> Packing.Telemetry.Int v)
               result (probes ()))
        | None -> ());
        (match result with
        | Packing.Problems.Optimal { value; placement } ->
          Format.printf "minimal makespan on %a: %d cycles@." Fpga.Chip.pp chip
            value;
          show_placement ~quiet ~render inst chip value placement;
          0
        | Packing.Problems.Feasible_incumbent
            { incumbent = { value; placement }; lower_bound; gap } ->
          Format.printf
            "budget exhausted: best makespan found on %a: %d cycles (proven \
             lower bound %d, gap %d)@."
            Fpga.Chip.pp chip value lower_bound gap;
          show_placement ~quiet ~render inst chip value placement;
          3
        | Packing.Problems.Infeasible ->
          Format.printf "no makespan works: a task overflows the chip@.";
          2
        | Packing.Problems.Unknown { lower_bound } ->
          Format.printf
            "budget exhausted before any schedule was found (makespan >= %d)@."
            lower_bound;
          3))
  in
  let doc = "Minimize the makespan on a fixed chip (MinT&FindS / SPP)." in
  Cmd.v (Cmd.info "min-time" ~doc)
    Term.(const run $ file_arg $ chip_opt $ render_flag $ quiet_flag $ jobs_opt
          $ time_limit_opt $ stats_opt $ realize_opt $ node_bounds_opt
          $ trace_opt $ progress_opt)

let min_extent_cmd =
  let axis_opt =
    Arg.(value & opt (some int) None
         & info [ "axis" ] ~docv:"K"
             ~doc:"Axis whose extent to minimize (default: the instance's \
                   objective axis). With a 2-dimensional instance and axis 1 \
                   this is open-ended strip packing.")
  in
  let run file chip time container_arg axis quiet jobs time_limit stats
      realize node_bounds trace_file progress =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      let inst = io.Fpga.Instance_io.instance in
      let d = Packing.Instance.dim inst in
      let axis =
        match axis with
        | None -> Packing.Instance.objective_axis inst
        | Some k -> k
      in
      if axis < 0 || axis >= d then
        err (Printf.sprintf "axis %d out of range for a %d-dimensional instance" axis d)
      else
        (* The base's extent along the minimized axis is ignored, so the
           3-dimensional chip surface needs no time budget when the time
           axis itself is being minimized. *)
        let time =
          if time = None && d = 3 && axis = 2 then Some 1 else time
        in
        match resolve_container io ~chip ~time container_arg with
        | Error msg -> err msg
        | Ok target ->
          let base =
            match target with
            | `Chip (chip, t_max) -> Fpga.Chip.container chip ~t_max
            | `Container c -> c
          in
          let options = options_with_deadline time_limit realize node_bounds in
          let options, write_trace =
            with_observability options trace_file progress
          in
          let probes, on_probe = probe_collector () in
          let result =
            Packing.Problems.minimize_extent ~options ~jobs ~on_probe inst
              ~axis ~base
          in
          write_trace ();
          (match stats with
          | Some `Json ->
            Format.printf "%s@."
              (anytime_stats_json ~problem:"min-extent"
                 ~value_json:(fun v -> Packing.Telemetry.Int v)
                 result (probes ()))
          | None -> ());
          (match result with
          | Packing.Problems.Optimal { value; placement } ->
            Format.printf "minimal extent along axis %d: %d@." axis value;
            show_placement_ddim ~quiet inst placement;
            0
          | Packing.Problems.Feasible_incumbent
              { incumbent = { value; placement }; lower_bound; gap } ->
            Format.printf
              "budget exhausted: best extent found along axis %d: %d (proven \
               lower bound %d, gap %d)@."
              axis value lower_bound gap;
            show_placement_ddim ~quiet inst placement;
            3
          | Packing.Problems.Infeasible ->
            Format.printf
              "no extent works: a task overflows the base cross-section@.";
            2
          | Packing.Problems.Unknown { lower_bound } ->
            Format.printf
              "budget exhausted before any placement was found (extent >= %d)@."
              lower_bound;
            3))
  in
  let doc =
    "Minimize the container extent along one axis (dimension-generic \
     MinT&FindS; strip packing when the instance is 2-dimensional)."
  in
  Cmd.v (Cmd.info "min-extent" ~doc)
    Term.(const run $ file_arg $ chip_opt $ time_opt $ container_opt $ axis_opt
          $ quiet_flag $ jobs_opt $ time_limit_opt $ stats_opt $ realize_opt
          $ node_bounds_opt $ trace_opt $ progress_opt)

let min_area_cmd =
  let run file time render quiet jobs time_limit stats realize node_bounds
      trace_file progress =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match resolve_time io time with
      | Error msg -> err msg
      | Ok t_max ->
        let inst = io.Fpga.Instance_io.instance in
        let options = options_with_deadline time_limit realize node_bounds in
        let options, write_trace =
          with_observability options trace_file progress
        in
        let probes, on_probe = probe_collector () in
        let result =
          Packing.Problems.minimize_base ~options ~jobs ~on_probe inst ~t_max
        in
        write_trace ();
        (match stats with
        | Some `Json ->
          Format.printf "%s@."
            (anytime_stats_json ~problem:"min-area"
               ~value_json:(fun v -> Packing.Telemetry.Int v)
               result (probes ()))
        | None -> ());
        (match result with
        | Packing.Problems.Optimal { value; placement } ->
          Format.printf "minimal chip for %d cycles: %dx%d@." t_max value value;
          show_placement ~quiet ~render inst (Fpga.Chip.square value) t_max
            placement;
          0
        | Packing.Problems.Feasible_incumbent
            { incumbent = { value; placement }; lower_bound; gap } ->
          Format.printf
            "budget exhausted: best chip found for %d cycles: %dx%d (proven \
             lower bound %d, gap %d)@."
            t_max value value lower_bound gap;
          show_placement ~quiet ~render inst (Fpga.Chip.square value) t_max
            placement;
          3
        | Packing.Problems.Infeasible ->
          Format.printf
            "no chip works: the critical path exceeds %d cycles@." t_max;
          2
        | Packing.Problems.Unknown { lower_bound } ->
          Format.printf
            "budget exhausted before any chip was found (side >= %d)@."
            lower_bound;
          3))
  in
  let doc = "Minimize a quadratic chip for a time budget (MinA&FindS / BMP)." in
  Cmd.v (Cmd.info "min-area" ~doc)
    Term.(const run $ file_arg $ time_opt $ render_flag $ quiet_flag $ jobs_opt
          $ time_limit_opt $ stats_opt $ realize_opt $ node_bounds_opt
          $ trace_opt $ progress_opt)

let pareto_cmd =
  let h_min_arg =
    Arg.(value & opt int 1 & info [ "h-min" ] ~docv:"H" ~doc:"Smallest chip size.")
  in
  let h_max_arg =
    Arg.(required & opt (some int) None
         & info [ "h-max" ] ~docv:"H" ~doc:"Largest chip size.")
  in
  let no_prec =
    Arg.(value & flag
         & info [ "no-precedence" ]
             ~doc:"Drop the precedence constraints (dashed curve of Fig. 7).")
  in
  let sweep_axis_opt =
    Arg.(value & opt (some int) None
         & info [ "sweep-axis" ] ~docv:"K"
             ~doc:"Sweep the extent of axis $(docv) between --h-min and \
                   --h-max instead of the quadratic chip side; requires \
                   --min-axis and a base container (--container or a \
                   `container` line).")
  in
  let min_axis_opt =
    Arg.(value & opt (some int) None
         & info [ "min-axis" ] ~docv:"K"
             ~doc:"Axis whose extent to minimize at each sweep step (with \
                   --sweep-axis).")
  in
  let run file h_min h_max no_prec sweep_axis min_axis container_arg quiet
      jobs time_limit stats trace_file progress =
    match read_instance file with
    | Error msg -> err msg
    | Ok io ->
      let inst = io.Fpga.Instance_io.instance in
      let inst =
        if no_prec then Packing.Instance.without_precedence inst else inst
      in
      let options = options_with_deadline time_limit `Adaptive `Adaptive in
      let options, write_trace = with_observability options trace_file progress in
      let probes, on_probe = probe_collector () in
      let front =
        match (sweep_axis, min_axis) with
        | None, None ->
          Ok
            (Packing.Problems.pareto_front ~options ~jobs ~on_probe inst ~h_min
               ~h_max)
        | Some sweep, Some minimize -> (
          let d = Packing.Instance.dim inst in
          if sweep < 0 || sweep >= d || minimize < 0 || minimize >= d then
            Error
              (Printf.sprintf
                 "axes must lie in 0..%d for this instance" (d - 1))
          else if sweep = minimize then
            Error "--sweep-axis and --min-axis must differ"
          else
          match resolve_container io ~chip:None ~time:None container_arg with
          | Error msg -> Error msg
          | Ok (`Chip (chip, t_max)) ->
            (* 3-dimensional fallback: the chip surface still names a base. *)
            Ok
              (Packing.Problems.pareto_front_axes ~options ~jobs ~on_probe inst
                 ~sweep ~minimize ~lo:h_min ~hi:h_max
                 ~base:(Fpga.Chip.container chip ~t_max))
          | Ok (`Container base) ->
            Ok
              (Packing.Problems.pareto_front_axes ~options ~jobs ~on_probe inst
                 ~sweep ~minimize ~lo:h_min ~hi:h_max ~base))
        | _ -> Error "--sweep-axis and --min-axis must be given together"
      in
      match front with
      | Error msg -> err msg
      | Ok { Packing.Problems.points; complete } ->
      write_trace ();
      (match stats with
      | Some `Json ->
        let open Packing.Telemetry in
        Format.printf "%s@."
          (to_string
             (Obj
                [
                  ("problem", String "pareto");
                  ("complete", Bool complete);
                  ( "points",
                    List
                      (List.map
                         (fun (h, t) -> List [ Int h; Int t ])
                         points) );
                  ( "probes",
                    List (List.map Packing.Problems.probe_json (probes ())) );
                ]))
      | None -> ());
      (match sweep_axis with
      | None ->
        if not quiet then Format.printf "chip  makespan@.";
        List.iter (fun (h, t) -> Format.printf "%dx%d  %d@." h h t) points
      | Some sweep ->
        let minimize = Option.value min_axis ~default:(-1) in
        if not quiet then
          Format.printf "axis%d  axis%d@." sweep minimize;
        List.iter (fun (s, e) -> Format.printf "%d  %d@." s e) points);
      if complete then 0
      else begin
        Format.printf
          "(budget exhausted: the front may be missing or overstating points)@.";
        3
      end
  in
  let doc = "Compute the chip-size/makespan Pareto front (paper Fig. 7)." in
  Cmd.v (Cmd.info "pareto" ~doc)
    Term.(const run $ file_arg $ h_min_arg $ h_max_arg $ no_prec
          $ sweep_axis_opt $ min_axis_opt $ container_opt $ quiet_flag
          $ jobs_opt $ time_limit_opt $ stats_opt $ trace_opt $ progress_opt)

let simulate_cmd =
  let run file chip time =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match (resolve_chip io chip, resolve_time io time) with
      | Error msg, _ | _, Error msg -> err msg
      | Ok chip, Ok t_max -> (
        let inst = io.Fpga.Instance_io.instance in
        let container = Fpga.Chip.container chip ~t_max in
        match Packing.Opp_solver.solve inst container with
        | Packing.Opp_solver.Feasible p, _ ->
          let report = Fpga.Simulator.run inst p ~chip in
          Format.printf "%a@." Fpga.Simulator.pp_report report;
          if report.Fpga.Simulator.ok then 0 else 2
        | Packing.Opp_solver.Infeasible, _ ->
          Format.printf "infeasible: nothing to simulate@.";
          2
        | Packing.Opp_solver.Timeout, _ ->
          Format.printf "timeout@.";
          3))
  in
  let doc = "Solve, then replay the placement on the chip simulator." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ file_arg $ chip_opt $ time_opt)

let check_cmd =
  let schedule_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"SCHEDULE" ~doc:"Schedule file (start/place lines).")
  in
  let run file schedule_file chip time render quiet =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match (resolve_chip io chip, resolve_time io time) with
      | Error msg, _ | _, Error msg -> err msg
      | Ok chip, Ok t_max -> (
        let inst = io.Fpga.Instance_io.instance in
        match
          let ic = open_in schedule_file in
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          close_in ic;
          Fpga.Schedule_io.parse inst text
        with
        | exception Failure msg -> err msg
        | exception Sys_error msg -> err msg
        | entries -> (
          (* Fully positioned schedules are validated directly; start
             times alone go through the FixedS solver. *)
          match Fpga.Schedule_io.placement_of inst entries with
          | Some p ->
            let container = Fpga.Chip.container chip ~t_max in
            let violations =
              Geometry.Placement.check p ~container
                ~precedes:(Packing.Instance.precedes inst)
            in
            if violations = [] then begin
              Format.printf "placement is feasible@.";
              show_placement ~quiet ~render inst chip t_max p;
              0
            end
            else begin
              List.iter
                (Format.printf "violation: %a@." Geometry.Placement.pp_violation)
                violations;
              2
            end
          | None -> (
            match
              Fpga.Schedule_io.schedule_array inst entries
            with
            | exception Failure msg -> err msg
            | schedule -> (
              match
                Packing.Problems.feasible_fixed_schedule inst
                  ~w:(Fpga.Chip.width chip) ~h:(Fpga.Chip.height chip) ~t_max
                  ~schedule
              with
              | Packing.Problems.Sat p ->
                Format.printf "schedule is realizable@.";
                show_placement ~quiet ~render inst chip t_max p;
                0
              | Packing.Problems.Unsat ->
                Format.printf "schedule is NOT realizable on %a within %d \
                               cycles@."
                  Fpga.Chip.pp chip t_max;
                2
              | Packing.Problems.Undecided ->
                Format.printf "budget exhausted: schedule undecided@.";
                3)))))
  in
  let doc =
    "Check a schedule file against a chip (FeasA&FixedS); `place` lines are \
     validated geometrically, `start` lines trigger the 2D placement search."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ file_arg $ schedule_arg $ chip_opt $ time_opt
          $ render_flag $ quiet_flag)

let bounds_cmd =
  let run file chip time stats =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match (resolve_chip io chip, resolve_time io time) with
      | Error msg, _ | _, Error msg -> err msg
      | Ok chip, Ok t_max ->
        let inst = io.Fpga.Instance_io.instance in
        let container = Fpga.Chip.container chip ~t_max in
        let engine = Packing.Bound_engine.create () in
        let verdicts = Packing.Bound_engine.run_all engine inst container in
        Format.printf "volume: %d of %d cells-cycles@."
          (Packing.Instance.total_volume inst)
          (Geometry.Container.volume container);
        Format.printf "critical path: %d of %d cycles@."
          (Packing.Instance.critical_path inst)
          t_max;
        List.iter
          (fun (name, v) ->
            Format.printf "%-14s %a@." name Packing.Bound_engine.pp_verdict v)
          verdicts;
        let refuted =
          List.exists
            (fun (_, v) ->
              match v with
              | Packing.Bound_engine.Infeasible _ -> true
              | Packing.Bound_engine.Lower_bound _
              | Packing.Bound_engine.Inconclusive -> false)
            verdicts
        in
        (match stats with
        | Some `Json ->
          let open Packing.Telemetry in
          Format.printf "%s@."
            (to_string
               (Obj
                  [
                    ("problem", String "bounds");
                    ( "verdicts",
                      Obj
                        (List.map
                           (fun (name, v) ->
                             (name, Packing.Bound_engine.verdict_json v))
                           verdicts) );
                    ( "bounds",
                      bounds_to_json (Packing.Bound_engine.counters engine) );
                  ]))
        | Some `Text | None -> ());
        if refuted then begin
          Format.printf "verdict: infeasible@.";
          2
        end
        else begin
          Format.printf "verdict: bounds are silent, a search is needed@.";
          0
        end)
  in
  let doc = "Evaluate the stage-1 lower bounds without searching." in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(const run $ file_arg $ chip_opt $ time_opt $ stats_opt)

let knapsack_cmd =
  let run file chip time =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match (resolve_chip io chip, resolve_time io time) with
      | Error msg, _ | _, Error msg -> err msg
      | Ok chip, Ok t_max -> (
        let inst = io.Fpga.Instance_io.instance in
        let container = Fpga.Chip.container chip ~t_max in
        (* Value = computation volume: prefer keeping the heavy work. *)
        let value i = Geometry.Box.volume (Packing.Instance.box inst i) in
        match Packing.Knapsack.solve inst container ~value with
        | None ->
          Format.printf "no non-empty selection fits@.";
          2
        | Some { Packing.Knapsack.value; selected; _ } ->
          Format.printf "best selection (value %d):" value;
          List.iter
            (fun i -> Format.printf " %s" (Packing.Instance.label inst i))
            selected;
          Format.printf "@.";
          0))
  in
  let doc =
    "Select the most valuable packable subset of tasks (orthogonal knapsack)."
  in
  Cmd.v (Cmd.info "knapsack" ~doc)
    Term.(const run $ file_arg $ chip_opt $ time_opt)

let vcd_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the VCD here.")
  in
  let run file chip time out =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match (resolve_chip io chip, resolve_time io time) with
      | Error msg, _ | _, Error msg -> err msg
      | Ok chip, Ok t_max -> (
        let inst = io.Fpga.Instance_io.instance in
        let container = Fpga.Chip.container chip ~t_max in
        match Packing.Opp_solver.solve inst container with
        | Packing.Opp_solver.Feasible p, _ ->
          let vcd = Fpga.Vcd.of_placement inst p ~chip () in
          (match out with
          | None -> print_string vcd
          | Some path ->
            let oc = open_out path in
            output_string oc vcd;
            close_out oc;
            Format.printf "wrote %s@." path);
          0
        | Packing.Opp_solver.Infeasible, _ ->
          Format.printf "infeasible: nothing to dump@.";
          2
        | Packing.Opp_solver.Timeout, _ ->
          Format.printf "timeout@.";
          3))
  in
  let doc = "Solve, then dump the schedule as a VCD waveform." in
  Cmd.v (Cmd.info "vcd" ~doc)
    Term.(const run $ file_arg $ chip_opt $ time_opt $ out_arg)

let ilp_cmd =
  let emit_flag =
    Arg.(value & flag & info [ "emit" ] ~doc:"Print the LP model itself.")
  in
  let run file chip time emit =
    match read_instance file with
    | Error msg -> err msg
    | Ok io -> (
      match (resolve_chip io chip, resolve_time io time) with
      | Error msg, _ | _, Error msg -> err msg
      | Ok chip, Ok t_max ->
        let inst = io.Fpga.Instance_io.instance in
        let container = Fpga.Chip.container chip ~t_max in
        let size = Baseline.Ilp_model.size_of inst container in
        Format.printf "grid 0-1 model: %a@." Baseline.Ilp_model.pp_size size;
        if emit then print_string (Baseline.Ilp_model.to_lp inst container);
        0)
  in
  let doc =
    "Show (or emit) the grid-indexed 0-1 ILP model the paper argues against."
  in
  Cmd.v (Cmd.info "ilp" ~doc)
    Term.(const run $ file_arg $ chip_opt $ time_opt $ emit_flag)

let trace_summary_cmd =
  let trace_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"JSONL trace file written by --trace.")
  in
  let run file =
    let ic = open_in file in
    let result = Packing.Trace.Summary.of_channel ic in
    close_in ic;
    match result with
    | Error msg -> err (file ^ ": " ^ msg)
    | Ok s ->
      Format.printf "%a@?" Packing.Trace.Summary.pp s;
      0
  in
  let doc =
    "Summarize a JSONL search trace: per-phase, per-bound and per-worker \
     time breakdowns, rule conflicts, probes, and incumbent history."
  in
  Cmd.v (Cmd.info "trace-summary" ~doc) Term.(const run $ trace_arg)

let serve_cmd =
  let serve_jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains draining the request stream; with N > 1 \
                   responses appear in completion order (match them by id).")
  in
  let cache_size =
    Arg.(value & opt int 1024
         & info [ "cache-size" ] ~docv:"N"
             ~doc:"Result-cache capacity in entries (LRU eviction).")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Disable the canonicalization-keyed result cache; every \
                   request reaches the solver.")
  in
  let max_nodes =
    Arg.(value & opt (some int) None
         & info [ "max-nodes" ] ~docv:"N"
             ~doc:"Server-side cap on per-request node budgets; request \
                   budgets are clamped to it.")
  in
  let max_time =
    Arg.(value & opt (some float) None
         & info [ "max-time" ] ~docv:"S"
             ~doc:"Server-side cap on per-request wall-clock budgets, \
                   seconds; doubles as the default budget for requests that \
                   name none.")
  in
  let solver_jobs =
    Arg.(value & opt int 1
         & info [ "solver-jobs" ] ~docv:"N"
             ~doc:"Default solver domains per request (a request's own \
                   \"jobs\" field overrides it).")
  in
  let heartbeat =
    Arg.(value & opt ~vopt:(Some 1.0) (some float) None
         & info [ "heartbeat" ] ~docv:"SECONDS"
             ~doc:"Stream heartbeat and incumbent event lines \
                   ({\"ev\":\"heartbeat\"|\"incumbent\"}) on this cadence \
                   (default 1.0 when the flag is given bare).")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Serve a TCP socket on 127.0.0.1:$(docv) (one connection \
                   at a time, same protocol and shared cache) instead of \
                   stdin/stdout.")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ] ~docv:"PORT"
             ~doc:"Expose process metrics on 127.0.0.1:$(docv): every \
                   connection receives one Prometheus text-format \
                   exposition and is closed.")
  in
  let metrics_snapshot =
    Arg.(value & opt (some string) None
         & info [ "metrics-snapshot" ] ~docv:"FILE"
             ~doc:"Append a JSONL metrics snapshot line to $(docv) on the \
                   heartbeat cadence (1.0 s unless --heartbeat says \
                   otherwise), plus one final snapshot at shutdown.")
  in
  let run serve_jobs cache_size no_cache max_nodes max_time solver_jobs
      heartbeat port metrics_port metrics_snapshot stats =
    (* The serve loop always runs with a live metrics registry — the
       "metrics" request op, the exposition port, and the snapshot dump
       all read it. Installed before [create] so the server and cache
       mint live handles. *)
    Packing.Metrics.set_default (Packing.Metrics.create ());
    let config =
      {
        Service.Server.jobs = serve_jobs;
        cache_capacity = cache_size;
        use_cache = not no_cache;
        max_nodes;
        max_time_s = max_time;
        heartbeat_s = heartbeat;
        solver_jobs;
      }
    in
    let server = Service.Server.create ~config () in
    (match metrics_port with
    | Some p -> ignore (Service.Server.serve_metrics ~port:p)
    | None -> ());
    let stop_dump =
      match metrics_snapshot with
      | Some path ->
        Some
          (Service.Server.start_metrics_dump ~path
             ~interval_s:(Option.value heartbeat ~default:1.0))
      | None -> None
    in
    (match port with
    | Some port -> Service.Server.serve_tcp server ~port
    | None ->
      let w = Service.Writer.of_channel stdout in
      Service.Server.serve_channel server w stdin;
      (match stats with
      | Some `Json ->
        Service.Writer.line w
          (Packing.Telemetry.to_string (Service.Server.stats_json server))
      | None -> ()));
    (match stop_dump with Some stop -> stop () | None -> ());
    0
  in
  let doc =
    "Run the placement service: a JSONL request loop (stdin/stdout, or TCP \
     with --port) multiplexing solve/min-time/min-area requests over a \
     domain pool, with a canonicalization-keyed result cache in front of \
     the solver. With --stats json, a final {\"ev\":\"stats\"} line reports \
     request and cache counters at EOF. Process metrics are always \
     collected; scrape them with --metrics-port, dump them with \
     --metrics-snapshot, or send {\"op\":\"metrics\"} on the request \
     stream."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ serve_jobs $ cache_size $ no_cache $ max_nodes
          $ max_time $ solver_jobs $ heartbeat $ port $ metrics_port
          $ metrics_snapshot $ stats_opt)

let metrics_summary_cmd =
  let metrics_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"A Prometheus text exposition (as scraped from \
                   --metrics-port) or a JSONL snapshot file (as written by \
                   --metrics-snapshot).")
  in
  let run file =
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (* A snapshot file renders its freshest (last) snapshot line; a
       file with no parseable snapshot line is read as an exposition.
       Both sources end in the same table. *)
    let snapshot_of_line line =
      if String.trim line = "" then None
      else
        match Packing.Telemetry.of_string line with
        | Error _ -> None
        | Ok j ->
          let payload =
            match Packing.Telemetry.member "metrics" j with
            | Some p -> p
            | None -> j
          in
          (match Packing.Metrics.of_json payload with
          | Ok s -> Some s
          | Error _ -> None)
    in
    let from_jsonl =
      String.split_on_char '\n' text
      |> List.filter_map snapshot_of_line
      |> List.rev
      |> function
      | s :: _ -> Some s
      | [] -> None
    in
    let result =
      match from_jsonl with
      | Some s -> Ok s
      | None -> Packing.Metrics.of_prometheus text
    in
    match result with
    | Error msg -> err (file ^ ": " ^ msg)
    | Ok s ->
      Format.printf "%a@?" Packing.Metrics.pp_table s;
      0
  in
  let doc =
    "Render a metrics file as a human table: counters and gauges with \
     their labels, histograms with count, sum and bucket-resolution \
     p50/p99. Accepts both exposition and snapshot formats."
  in
  Cmd.v (Cmd.info "metrics-summary" ~doc) Term.(const run $ metrics_arg)

let export_cmd =
  let which =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:
               "Benchmark name ($(b,de) or $(b,codec)), or a path to an \
                instance file to parse and re-print (round-trip check: v1 \
                files re-print byte-identically).")
  in
  let run which =
    match
      match which with
      | "de" ->
        Ok
          {
            Fpga.Instance_io.instance = Benchmarks.De.instance;
            chip = Some (Fpga.Chip.square 32);
            t_max = Some 14;
            container = None;
          }
      | "codec" ->
        Ok
          {
            Fpga.Instance_io.instance = Benchmarks.Video_codec.instance;
            chip = Some (Fpga.Chip.square 64);
            t_max = Some 59;
            container = None;
          }
      | file -> read_instance file
    with
    | Ok io ->
      print_string (Fpga.Instance_io.print io);
      0
    | Error m ->
      Printf.eprintf "error: %s\n" m;
      1
  in
  let doc = "Print a built-in benchmark or an instance file." in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ which)

let online_cmd =
  let file_opt =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"Instance file; every task arrives at time 0 (see \
                   --stagger). Omit it and pass --generate N for a \
                   synthetic arrival stream.")
  in
  let policy_opt =
    Arg.(value
         & opt (enum [ ("corner", Fpga.Online.Corner);
                       ("first", Fpga.Online.First_fit);
                       ("best", Fpga.Online.Best_fit);
                       ("worst", Fpga.Online.Worst_fit) ])
             Fpga.Online.Best_fit
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Fit policy: corner (the historical corner-candidate \
                   scan) or first/best/worst fit over the \
                   maximal-empty-rectangle manager (default: best).")
  in
  let compaction_flag =
    Arg.(value & flag
         & info [ "compaction" ]
             ~doc:"Enable cost-aware defragmentation: when a task cannot be \
                   placed, re-pack the running modules bottom-left — but \
                   commit only when the modeled wait-time saved exceeds the \
                   reconfiguration cost of the moved modules, and never \
                   without placing the blocked task.")
  in
  let move_delay_opt =
    Arg.(value & opt int 1
         & info [ "move-delay" ] ~docv:"N"
             ~doc:"Extra cycles charged per moved module during a \
                   compaction, on top of the --reconfig-model load time.")
  in
  let reconfig_conv =
    let parse s =
      match String.split_on_char ':' (String.lowercase_ascii s) with
      | [ "constant"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok (Fpga.Reconfig.Constant n)
        | _ -> Error (`Msg "expected constant:N with N >= 0"))
      | [ "column"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok (Fpga.Reconfig.Per_column n)
        | _ -> Error (`Msg "expected column:N with N >= 0"))
      | [ "cell"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok (Fpga.Reconfig.Per_cell n)
        | _ -> Error (`Msg "expected cell:N with N >= 0"))
      | _ -> Error (`Msg "expected constant:N, column:N or cell:N")
    in
    let print fmt m = Format.fprintf fmt "%a" Fpga.Reconfig.pp m in
    Arg.conv (parse, print)
  in
  let reconfig_opt =
    Arg.(value & opt reconfig_conv (Fpga.Reconfig.Constant 0)
         & info [ "reconfig-model" ] ~docv:"MODEL"
             ~doc:"Configuration-load cost model for moved modules: \
                   constant:N, column:N (per occupied column) or cell:N \
                   (per cell). Default constant:0.")
  in
  let generate_opt =
    Arg.(value & opt (some int) None
         & info [ "generate" ] ~docv:"N"
             ~doc:"Generate a synthetic stream of N tasks instead of \
                   reading FILE (chip defaults to 32x32 unless --chip).")
  in
  let seed_opt =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S" ~doc:"Stream generator seed.")
  in
  let load_opt =
    Arg.(value & opt float 1.0
         & info [ "load" ] ~docv:"L"
             ~doc:"Offered load of the generated stream: mean area x \
                   duration work per time unit over the chip capacity.")
  in
  let max_extent_opt =
    Arg.(value & opt int 8
         & info [ "max-extent" ] ~docv:"E"
             ~doc:"Maximum footprint side of generated tasks.")
  in
  let max_duration_opt =
    Arg.(value & opt int 12
         & info [ "max-duration" ] ~docv:"D"
             ~doc:"Maximum duration of generated tasks.")
  in
  let arc_probability_opt =
    Arg.(value & opt float 0.1
         & info [ "arc-probability" ] ~docv:"P"
             ~doc:"Probability that a generated task depends on recent \
                   predecessors.")
  in
  let stagger_opt =
    Arg.(value & opt int 0
         & info [ "stagger" ] ~docv:"T"
             ~doc:"With FILE: task i arrives at i*T instead of 0.")
  in
  let run file chip policy compaction move_delay reconfig generate seed load
      max_extent max_duration arc_probability stagger stats trace_file quiet =
    let trace =
      match trace_file with
      | None -> Packing.Trace.null
      | Some _ -> Packing.Trace.create ()
    in
    let write_trace () =
      match trace_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        if Filename.check_suffix path ".json" then
          Packing.Trace.write_chrome trace oc
        else Packing.Trace.write_jsonl trace oc;
        close_out oc;
        Format.eprintf "wrote %s@." path
    in
    let result =
      match (file, generate) with
      | None, None -> Error "pass an instance FILE or --generate N"
      | Some f, _ -> (
        match read_instance f with
        | Error msg -> Error msg
        | Ok io -> (
          match resolve_chip io chip with
          | Error msg -> Error msg
          | Ok chip ->
            let inst = io.Fpga.Instance_io.instance in
            let arrivals =
              List.init (Packing.Instance.count inst) (fun i ->
                  { Fpga.Online.task = i; arrival_time = i * stagger })
            in
            Ok
              ( chip,
                Fpga.Online.run ~policy ~reconfig ~trace inst arrivals ~chip
                  ~compaction ~move_delay )))
      | None, Some n ->
        let chip =
          match chip with Some c -> c | None -> Fpga.Chip.square 32
        in
        let tasks =
          Benchmarks.Generate.arrival_stream ~seed ~n ~chip ~load ~max_extent
            ~max_duration ~arc_probability ()
        in
        Ok
          ( chip,
            Fpga.Online.run_stream ~policy ~reconfig ~trace tasks ~chip
              ~compaction ~move_delay )
    in
    match result with
    | Error msg -> err msg
    | Ok (chip, r) ->
      let {
        Fpga.Online.placed;
        rejected;
        never_arrived;
        deferrals;
        compactions;
        moved_tasks;
        move_cycles;
        makespan;
        utilization;
        latency;
        events = _;
        placement = _;
      } =
        r
      in
      if not quiet then begin
        Format.printf "placed %d, rejected %d, never arrived %d (of %d tasks)@."
          placed rejected never_arrived
          (placed + rejected + never_arrived);
        Format.printf "makespan %d, utilization %.1f%%, deferrals %d@." makespan
          (100.0 *. utilization) deferrals;
        Format.printf "compactions %d (moved %d modules, %d cycles charged)@."
          compactions moved_tasks move_cycles;
        Format.printf
          "placement latency: p50 %.1f us, p99 %.1f us, max %.1f us (%d \
           samples)@."
          latency.Fpga.Online.p50_us latency.Fpga.Online.p99_us
          latency.Fpga.Online.max_us latency.Fpga.Online.samples
      end;
      (match stats with
      | Some `Json ->
        let open Packing.Telemetry in
        let policy_name =
          match policy with
          | Fpga.Online.Corner -> "corner"
          | Fpga.Online.First_fit -> "first"
          | Fpga.Online.Best_fit -> "best"
          | Fpga.Online.Worst_fit -> "worst"
        in
        Format.printf "%s@."
          (to_string
             (Obj
                [
                  ("problem", String "online");
                  ("policy", String policy_name);
                  ( "chip",
                    String
                      (Printf.sprintf "%dx%d" (Fpga.Chip.width chip)
                         (Fpga.Chip.height chip)) );
                  ("compaction", Bool compaction);
                  ("move_delay", Int move_delay);
                  ("online", online_to_json (Fpga.Online.counters r));
                ]))
      | Some `Text | None -> ());
      write_trace ();
      if rejected = 0 && never_arrived = 0 then 0 else 2
  in
  let doc =
    "Run the online placement manager over an arrival stream (from an \
     instance file or --generate) and report placements, rejections, \
     utilization and per-placement latency."
  in
  Cmd.v (Cmd.info "online" ~doc)
    Term.(const run $ file_opt $ chip_opt $ policy_opt $ compaction_flag
          $ move_delay_opt $ reconfig_opt $ generate_opt $ seed_opt $ load_opt
          $ max_extent_opt $ max_duration_opt $ arc_probability_opt
          $ stagger_opt $ stats_opt $ trace_opt $ quiet_flag)

let () =
  let doc =
    "Optimal FPGA module placement with temporal precedence constraints \
     (packing-class branch and bound, after Fekete, Köhler and Teich, DATE \
     2001)."
  in
  let info = Cmd.info "fpga_place" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            solve_cmd;
            check_cmd;
            min_time_cmd;
            min_extent_cmd;
            min_area_cmd;
            pareto_cmd;
            simulate_cmd;
            bounds_cmd;
            knapsack_cmd;
            vcd_cmd;
            ilp_cmd;
            export_cmd;
            serve_cmd;
            online_cmd;
            trace_summary_cmd;
            metrics_summary_cmd;
          ]))
